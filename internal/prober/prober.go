// Package prober is the measurement agent — the role scamper plays on
// an Ark monitor. A Prober is bound to one vantage-point host inside
// the simulated internetwork and offers the operations the paper's
// campaign used: ICMP ping, TTL-limited traceroute, Record-Route
// probes, the TSLP near/far link sampler, and 1 pps loss probing.
// Probing is paced by a token bucket (the paper kept to 100 packets
// per second out of care for the host networks), and every result can
// be streamed to a warts writer.
package prober

import (
	"fmt"
	"time"

	"afrixp/internal/netaddr"
	"afrixp/internal/netsim"
	"afrixp/internal/packet"
	"afrixp/internal/queue"
	"afrixp/internal/simclock"
	"afrixp/internal/warts"
)

// Config tunes a Prober.
type Config struct {
	// Name identifies the monitor in warts records ("gixa-gh").
	Name string
	// RatePPS is the probing budget. Default 100, the paper's rate.
	RatePPS float64
	// Warts, when non-nil, receives every probe result.
	Warts *warts.Writer
	// Timeout is how long the prober waits before declaring a probe
	// lost. It only affects the virtual time consumed. Default 2 s.
	Timeout simclock.Duration
}

// Prober is a scamper-like measurement process on one VP.
//
// A Prober is single-goroutine state (pacing bucket, sequence
// numbers, probe context); campaigns that probe several VPs
// concurrently give each VP its own Prober and fan out per VP.
type Prober struct {
	nw     *netsim.Network
	vp     *netsim.Node
	cfg    Config
	bucket *queue.TokenBucket
	ctx    *netsim.ProbeCtx
	icmpID uint16
	seq    uint16
	// payload is the echo-payload scratch tsPayload writes into;
	// building the wire copies it into the wire image, so it is free
	// to be rewritten by the next probe.
	payload [8]byte
	// wire and pkt are the probe-building scratch: one retained wire
	// buffer plus the packet builders' ICMP staging buffer, reused
	// across probes so steady-state probing does not allocate.
	wire []byte
	pkt  packet.Scratch
}

// New binds a prober to a vantage-point node.
func New(nw *netsim.Network, vp *netsim.Node, cfg Config) *Prober {
	if cfg.RatePPS <= 0 {
		cfg.RatePPS = 100
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Name == "" {
		cfg.Name = vp.Name
	}
	return &Prober{
		nw:     nw,
		vp:     vp,
		cfg:    cfg,
		bucket: queue.NewTokenBucket(cfg.RatePPS, cfg.RatePPS, 0),
		ctx:    nw.NewProbeCtx(uint64(vp.ID)),
		icmpID: uint16(vp.ID)*257 + 11,
	}
}

// VP returns the prober's vantage-point node.
func (p *Prober) VP() *netsim.Node { return p.vp }

// SetBatchStep points this prober's frozen samples at batch step i of
// the most recent Network.AdvanceQueuesBatch; a negative i restores
// live-frontier observation. The batched campaign scheduler calls it as
// a worker walks the steps of its batch. Pacing and the nonce stream
// are untouched — only the queue state a sample reads changes.
func (p *Prober) SetBatchStep(i int) { p.ctx.SetStep(i) }

// ProbeStats exposes this prober's hot-path sampling accounting (see
// netsim.ProbeStats). Same single-goroutine contract as the probe
// context: the campaign engine reads it only at batch barriers.
func (p *Prober) ProbeStats() *netsim.ProbeStats { return p.ctx.Stats() }

// Name returns the monitor name.
func (p *Prober) Name() string { return p.cfg.Name }

// CheckpointState is a Prober's mutable measurement state at a batch
// barrier: the probe sequence counter, the pacing bucket, the position
// in the private nonce stream, and the hot-path sampling counters.
// Everything else (cached trajectories, scratch buffers) is derived
// and rebuilt on resume.
type CheckpointState struct {
	Seq          uint16
	BucketTokens float64
	BucketLast   simclock.Time
	NonceCount   uint64
	Stats        netsim.ProbeStats
}

// Checkpoint captures the prober's state. Single-goroutine contract:
// call only at batch barriers, like ProbeStats.
func (p *Prober) Checkpoint() CheckpointState {
	tokens, last := p.bucket.State()
	return CheckpointState{
		Seq:          p.seq,
		BucketTokens: tokens,
		BucketLast:   last,
		NonceCount:   p.ctx.NonceCount(),
		Stats:        *p.ctx.Stats(),
	}
}

// RestoreCheckpoint overwrites the prober's state from a snapshot
// taken at the same barrier of an equivalent run.
func (p *Prober) RestoreCheckpoint(st CheckpointState) {
	p.seq = st.Seq
	p.bucket.RestoreState(st.BucketTokens, st.BucketLast)
	p.ctx.RestoreNonceCount(st.NonceCount)
	*p.ctx.Stats() = st.Stats
}

// PingResult is the outcome of one echo probe.
type PingResult struct {
	// SentAt is the (paced) transmission time.
	SentAt simclock.Time
	// Responder is the address that answered (zero when lost).
	Responder netaddr.Addr
	// RespType is the ICMP type of the response.
	RespType uint8
	// RespIPID is the IP identification field of the response —
	// routers draw it from a shared per-box counter, the signal
	// Ally-style alias resolution uses.
	RespIPID uint16
	RTT      simclock.Duration
	Lost     bool
}

// Ping sends one echo probe with the given TTL at (no earlier than) t.
func (p *Prober) Ping(dst netaddr.Addr, ttl uint8, t simclock.Time) (PingResult, error) {
	sendAt := p.bucket.NextAllowed(t)
	p.bucket.Allow(sendAt)
	p.seq++
	wire, err := p.pkt.Echo(p.wire[:0], packet.IPv4{
		TTL: ttl, Src: p.nw.SrcAddr(p.vp), Dst: dst, ID: p.seq,
	}, p.icmpID, p.seq, p.tsPayload(sendAt))
	if err != nil {
		return PingResult{}, fmt.Errorf("prober: building echo: %w", err)
	}
	p.wire = wire
	resp, outcome, err := p.nw.Inject(p.vp, wire, sendAt)
	if err != nil {
		return PingResult{}, fmt.Errorf("prober: inject: %w", err)
	}
	res := PingResult{SentAt: sendAt}
	if outcome != netsim.Delivered {
		res.Lost = true
	} else {
		rip, pl, derr := packet.DecodeIPv4(resp.Wire)
		if derr != nil {
			return PingResult{}, derr
		}
		icmp, derr := packet.DecodeICMP(pl)
		if derr != nil {
			return PingResult{}, derr
		}
		res.Responder = resp.From
		res.RespType = icmp.Type
		res.RespIPID = rip.ID
		res.RTT = resp.At.Sub(sendAt)
		if res.RTT > p.cfg.Timeout {
			// Response slower than the timeout counts as loss, as it
			// would for scamper.
			res = PingResult{SentAt: sendAt, Lost: true}
		}
	}
	p.log(&warts.Record{
		Type: warts.TypePing, VP: p.cfg.Name, At: sendAt, Target: dst,
		Responder: res.Responder, TTL: ttl, RespType: res.RespType,
		RTT: res.RTT, Lost: res.Lost,
	})
	return res, nil
}

// Hop is one traceroute step.
type Hop struct {
	TTL       uint8
	Responder netaddr.Addr
	RTT       simclock.Duration
	Lost      bool
	// Reached marks the hop that answered with an echo reply.
	Reached bool
}

// tracerouteGapLimit stops a trace after this many consecutive
// unresponsive hops, matching scamper's gap-limit behavior — probing
// on into a black hole wastes the rate budget.
const tracerouteGapLimit = 4

// Traceroute walks TTLs toward dst until the destination answers,
// maxTTL is exhausted, or the gap limit of consecutive silent hops is
// reached. Each hop consumes pacing budget; lost hops are retried
// once, as scamper does by default.
func (p *Prober) Traceroute(dst netaddr.Addr, maxTTL uint8, t simclock.Time) ([]Hop, error) {
	hops := make([]Hop, 0, maxTTL)
	gap := 0
	at := t
	for ttl := uint8(1); ttl <= maxTTL; ttl++ {
		res, err := p.Ping(dst, ttl, at)
		if err != nil {
			return hops, err
		}
		if res.Lost {
			// One retry.
			res, err = p.Ping(dst, ttl, res.SentAt.Add(50*time.Millisecond))
			if err != nil {
				return hops, err
			}
		}
		at = res.SentAt.Add(10 * time.Millisecond)
		hop := Hop{TTL: ttl, Responder: res.Responder, RTT: res.RTT, Lost: res.Lost,
			Reached: !res.Lost && res.RespType == packet.ICMPEchoReply}
		hops = append(hops, hop)
		p.log(&warts.Record{
			Type: warts.TypeTraceHop, VP: p.cfg.Name, At: res.SentAt, Target: dst,
			Responder: res.Responder, TTL: ttl, RespType: res.RespType,
			RTT: res.RTT, Lost: res.Lost,
		})
		if hop.Reached {
			break
		}
		if hop.Lost {
			gap++
			if gap >= tracerouteGapLimit {
				break
			}
		} else {
			gap = 0
		}
	}
	return hops, nil
}

// RRResult is the outcome of a Record-Route probe.
type RRResult struct {
	Recorded []netaddr.Addr
	Full     bool
	RTT      simclock.Duration
	Lost     bool
}

// RRPing sends an echo probe carrying the Record Route option.
func (p *Prober) RRPing(dst netaddr.Addr, t simclock.Time) (RRResult, error) {
	sendAt := p.bucket.NextAllowed(t)
	p.bucket.Allow(sendAt)
	p.seq++
	ip := packet.IPv4{TTL: 64, Src: p.nw.SrcAddr(p.vp), Dst: dst, ID: p.seq,
		RecordRoute: &packet.RecordRoute{Slots: packet.MaxRecordRouteSlots}}
	wire, err := p.pkt.Echo(p.wire[:0], ip, p.icmpID, p.seq, p.tsPayload(sendAt))
	if err != nil {
		return RRResult{}, err
	}
	p.wire = wire
	resp, outcome, err := p.nw.Inject(p.vp, wire, sendAt)
	if err != nil {
		return RRResult{}, err
	}
	var res RRResult
	if outcome != netsim.Delivered {
		res.Lost = true
	} else {
		rip, _, derr := packet.DecodeIPv4(resp.Wire)
		if derr != nil {
			return RRResult{}, derr
		}
		if rip.RecordRoute != nil {
			res.Recorded = rip.RecordRoute.Recorded
			res.Full = rip.RecordRoute.Full()
		}
		res.RTT = resp.At.Sub(sendAt)
	}
	p.log(&warts.Record{
		Type: warts.TypeRRPing, VP: p.cfg.Name, At: sendAt, Target: dst,
		TTL: 64, RTT: res.RTT, Lost: res.Lost, RR: res.Recorded, RRFull: res.Full,
	})
	return res, nil
}

// log writes a record when a warts writer is configured. Write errors
// panic: losing campaign data silently would invalidate the study.
func (p *Prober) log(rec *warts.Record) {
	if p.cfg.Warts == nil {
		return
	}
	if err := p.cfg.Warts.Write(rec); err != nil {
		panic(fmt.Sprintf("prober: warts write failed: %v", err))
	}
}

// tsPayload encodes the transmit timestamp into the echo payload, as
// scamper does to match replies without keeping state. The bytes live
// in the prober's scratch and are only valid until the next probe.
func (p *Prober) tsPayload(t simclock.Time) []byte {
	v := uint64(t)
	for i := 0; i < 8; i++ {
		p.payload[i] = byte(v >> (56 - 8*i))
	}
	return p.payload[:]
}
