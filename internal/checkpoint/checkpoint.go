// Package checkpoint serializes the campaign engine's full
// measurement state at batch barriers — the step-batched scheduler's
// proven safe points, where every worker has drained and all per-VP
// state is at a consistent virtual instant — so a long campaign can be
// killed and resumed bit-identically (DESIGN.md §15).
//
// A checkpoint file is a small framed container: an 8-byte magic, the
// gob payload length, and an IEEE CRC32 of the payload, then the gob
// bytes. gob carries float64s by bit pattern, so a round-tripped
// snapshot is exactly the state that was captured — the bit-identity
// invariant survives serialization. Files are written atomically
// (temp + rename) and named by their barrier instant; LoadLatest walks
// newest-first and transparently falls back past truncated or corrupt
// files, which is exactly what a SIGKILL mid-write leaves behind.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"afrixp/internal/analysis"
	"afrixp/internal/budget"
	"afrixp/internal/loss"
	"afrixp/internal/prober"
	"afrixp/internal/simclock"
)

// Format is the serialization format version. Bump on any
// incompatible change to Snapshot's shape; LoadLatest refuses
// mismatched formats via the manifest check.
const Format = 1

// magic identifies a checkpoint file.
const magic = "AFXCKPT1"

// headerLen is magic + payload length (8) + CRC32 (4).
const headerLen = len(magic) + 8 + 4

// keepNewest is how many barrier snapshots Write retains: the newest
// plus two fallbacks, so a snapshot truncated by a kill mid-write
// always leaves an older complete barrier to resume from.
const keepNewest = 3

// Manifest identifies the run a snapshot belongs to. A resume
// verifies it against the resuming process's own configuration, so
// loading a checkpoint onto the wrong (seed, scale, budget, faults,
// shards) fails loudly instead of silently diverging.
type Manifest struct {
	// Format is the serialization format version.
	Format int
	// ConfigHash digests every determinism-relevant engine knob.
	// Execution-shape knobs (Workers, BatchSteps, checkpoint cadence)
	// are deliberately excluded: the engine is bit-identical across
	// them, so a resume may change them freely.
	ConfigHash string
	// WorldFingerprint digests the generated world before any
	// campaign-time advancement (worldgen.Fingerprint).
	WorldFingerprint string
}

// LinkState is one probed link's measurement state.
type LinkState struct {
	Collector analysis.CollectorState
	// Loss is nil for links without a loss-probing session.
	Loss *loss.CollectorState
}

// VPState is one vantage point's measurement state, links in the
// engine's deterministic per-VP order.
type VPState struct {
	RoundsScheduled, RoundsDown int
	Prober                      prober.CheckpointState
	Links                       []LinkState
}

// Snapshot is the engine's full measurement-side state at a barrier.
// World and queue state is deliberately absent: it is a deterministic
// function of (config, virtual time), which the resuming engine
// replays — the snapshot holds only what probing accumulated.
type Snapshot struct {
	Manifest Manifest
	// Barrier is the batch-barrier instant the snapshot was taken at.
	Barrier simclock.Time
	VPs     []VPState
	// Budget is nil when no probe-budget scheduler is installed.
	Budget *budget.SchedulerCheckpoint
	// Arenas holds each shard's shared tschunk slab bytes, shard order.
	Arenas [][]byte
}

// fileName names a snapshot by its barrier instant; zero-padding keeps
// lexicographic order equal to barrier order.
func fileName(t simclock.Time) string {
	return fmt.Sprintf("ckpt-%020d.bin", uint64(t))
}

// Write serializes snap into dir atomically (temp file + rename), then
// prunes all but the newest keepNewest snapshots. It returns the gob
// payload size in bytes — the figure the checkpoint benchmark reports.
func Write(dir string, snap *Snapshot) (int, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return 0, fmt.Errorf("checkpoint: encoding snapshot: %w", err)
	}
	header := make([]byte, headerLen)
	copy(header, magic)
	binary.BigEndian.PutUint64(header[len(magic):], uint64(payload.Len()))
	binary.BigEndian.PutUint32(header[len(magic)+8:], crc32.ChecksumIEEE(payload.Bytes()))

	final := filepath.Join(dir, fileName(snap.Barrier))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Write(header); err == nil {
		_, err = f.Write(payload.Bytes())
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: writing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	prune(dir)
	return payload.Len(), nil
}

// prune removes all but the newest keepNewest snapshots. Best-effort:
// a failed removal never fails the checkpoint that just landed.
func prune(dir string) {
	names := snapshotNames(dir)
	for _, name := range names[:max(0, len(names)-keepNewest)] {
		os.Remove(filepath.Join(dir, name))
	}
}

// snapshotNames lists snapshot files in dir, oldest first.
func snapshotNames(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".bin") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// LoadLatest returns the newest readable snapshot in dir, skipping
// truncated or corrupt files (a kill mid-write leaves exactly those) —
// the fallback that makes resume survive dying during a checkpoint.
// When want is non-nil, the loaded manifest must match it exactly;
// a mismatch is a hard error, never a fallback, because an older
// snapshot from the wrong run would be just as wrong. (nil, nil) means
// no checkpoint exists and the caller should start fresh.
func LoadLatest(dir string, want *Manifest) (*Snapshot, error) {
	names := snapshotNames(dir)
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(dir, names[i])
		snap, ok, err := readSnapshot(path)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // truncated or corrupt: fall back to the prior barrier
		}
		if want != nil && snap.Manifest != *want {
			return nil, fmt.Errorf(
				"checkpoint: %s belongs to a different run: have %+v, want %+v",
				path, snap.Manifest, *want)
		}
		return snap, nil
	}
	return nil, nil
}

// readSnapshot parses one file. ok=false flags recoverable damage
// (truncation, bad CRC); err flags unrecoverable problems (I/O).
func readSnapshot(path string) (*Snapshot, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: %w", err)
	}
	if len(data) < headerLen || string(data[:len(magic)]) != magic {
		return nil, false, nil
	}
	payloadLen := binary.BigEndian.Uint64(data[len(magic):])
	wantCRC := binary.BigEndian.Uint32(data[len(magic)+8:])
	payload := data[headerLen:]
	if uint64(len(payload)) != payloadLen {
		return nil, false, nil // truncated (or trailing garbage)
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, false, nil
	}
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, false, nil // CRC race with format drift: treat as damage
	}
	return &snap, true, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
