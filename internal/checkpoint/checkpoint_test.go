package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"afrixp/internal/analysis"
	"afrixp/internal/budget"
	"afrixp/internal/loss"
	"afrixp/internal/simclock"
)

// snapAt builds a small but fully-populated snapshot: NaN-holed float
// payloads (the bit pattern gob must preserve), an optional loss
// collector, a budget checkpoint, and shard arena bytes.
func snapAt(barrier simclock.Time) *Snapshot {
	nan := math.NaN()
	return &Snapshot{
		Manifest: Manifest{Format: Format, ConfigHash: "cfg", WorldFingerprint: "world"},
		Barrier:  barrier,
		VPs: []VPState{{
			RoundsScheduled: 42,
			RoundsDown:      3,
			Links: []LinkState{
				{Collector: analysis.CollectorState{
					Near: []float64{1.5, nan, 3.25}, Far: []float64{nan, 2.5, nan},
					FarRounds: 7, SkippedRounds: 2,
				}},
				{Collector: analysis.CollectorState{Chunked: true},
					Loss: &loss.CollectorState{
						Batches: []loss.Batch{{Start: barrier, Sent: 100, Lost: 4}},
						Skipped: 1, Missed: 2,
					}},
			},
		}},
		Budget: &budget.SchedulerCheckpoint{Next: barrier.Add(1), Recomputes: 5, SpendFrac: 0.5},
		Arenas: [][]byte{{0xde, 0xad}, {}},
	}
}

func TestWriteLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	snap := snapAt(1000)
	n, err := Write(dir, snap)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("payload size %d, want > 0", n)
	}
	got, err := LoadLatest(dir, &snap.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("LoadLatest returned nil for a just-written snapshot")
	}
	if got.Barrier != 1000 || got.Manifest != snap.Manifest {
		t.Fatalf("roundtrip header mismatch: %+v", got)
	}
	near := got.VPs[0].Links[0].Collector.Near
	if len(near) != 3 || near[0] != 1.5 || !math.IsNaN(near[1]) || near[2] != 3.25 {
		t.Fatalf("float payload (incl. NaN) not preserved: %v", near)
	}
	l := got.VPs[0].Links[1].Loss
	if l == nil || l.Batches[0].Lost != 4 || l.Skipped != 1 || l.Missed != 2 {
		t.Fatalf("loss state not preserved: %+v", l)
	}
	if got.Budget == nil || got.Budget.Recomputes != 5 || got.Budget.SpendFrac != 0.5 {
		t.Fatalf("budget state not preserved: %+v", got.Budget)
	}
	if len(got.Arenas) != 2 || string(got.Arenas[0]) != "\xde\xad" || len(got.Arenas[1]) != 0 {
		t.Fatalf("arena bytes not preserved: %v", got.Arenas)
	}
}

func TestLoadLatestEmptyDir(t *testing.T) {
	snap, err := LoadLatest(t.TempDir(), nil)
	if err != nil || snap != nil {
		t.Fatalf("empty dir: snap=%v err=%v, want nil/nil", snap, err)
	}
	snap, err = LoadLatest(filepath.Join(t.TempDir(), "never-created"), nil)
	if err != nil || snap != nil {
		t.Fatalf("missing dir: snap=%v err=%v, want nil/nil", snap, err)
	}
}

// A kill mid-write leaves a truncated or corrupt newest file; the
// loader must fall back to the previous complete barrier snapshot.
func TestLoadLatestFallsBackPastDamage(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, snapAt(1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(dir, snapAt(2000)); err != nil {
		t.Fatal(err)
	}
	newest := filepath.Join(dir, fileName(2000))

	damage := []struct {
		name string
		mut  func(data []byte) []byte
	}{
		{"truncated-mid-payload", func(d []byte) []byte { return d[:len(d)/2] }},
		{"truncated-in-header", func(d []byte) []byte { return d[:headerLen-2] }},
		{"empty", func(d []byte) []byte { return nil }},
		{"flipped-payload-bit", func(d []byte) []byte { d[len(d)-1] ^= 0x01; return d }},
		{"bad-magic", func(d []byte) []byte { d[0] = 'X'; return d }},
	}
	pristine, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	for _, dm := range damage {
		buf := append([]byte(nil), pristine...)
		if err := os.WriteFile(newest, dm.mut(buf), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := LoadLatest(dir, nil)
		if err != nil {
			t.Fatalf("%s: %v", dm.name, err)
		}
		if got == nil || got.Barrier != 1000 {
			t.Fatalf("%s: fell back to %+v, want barrier 1000", dm.name, got)
		}
	}
}

func TestWritePrunesToNewest(t *testing.T) {
	dir := t.TempDir()
	for _, b := range []simclock.Time{100, 200, 300, 400, 500} {
		if _, err := Write(dir, snapAt(b)); err != nil {
			t.Fatal(err)
		}
	}
	names := snapshotNames(dir)
	if len(names) != keepNewest {
		t.Fatalf("kept %d snapshots %v, want %d", len(names), names, keepNewest)
	}
	if names[0] != fileName(300) || names[len(names)-1] != fileName(500) {
		t.Fatalf("pruned the wrong files: %v", names)
	}
	got, err := LoadLatest(dir, nil)
	if err != nil || got == nil || got.Barrier != 500 {
		t.Fatalf("LoadLatest after prune: %+v, %v", got, err)
	}
}

// A snapshot from a differently-configured run is a hard error, never
// a silent fresh start and never a fallback to an older (equally
// wrong) file.
func TestManifestMismatchIsHardError(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, snapAt(1000)); err != nil {
		t.Fatal(err)
	}
	want := Manifest{Format: Format, ConfigHash: "other", WorldFingerprint: "world"}
	if _, err := LoadLatest(dir, &want); err == nil {
		t.Fatal("manifest mismatch must be an error")
	} else if !strings.Contains(err.Error(), "different run") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// Lexicographic name order must equal barrier order even across
// magnitude boundaries — the zero-padding contract prune and
// LoadLatest rely on.
func TestFileNameOrdering(t *testing.T) {
	if a, b := fileName(999), fileName(1000); a >= b {
		t.Fatalf("fileName ordering broken: %q >= %q", a, b)
	}
}
