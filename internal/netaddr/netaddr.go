// Package netaddr provides compact IPv4 address and prefix value types
// used throughout the simulator. An Addr is a bare uint32, which keeps
// router FIB lookups and packet forwarding allocation-free on the hot
// path, unlike net.IP ([]byte) from the standard library.
package netaddr

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order. The zero Addr (0.0.0.0)
// doubles as the "unset" sentinel throughout the simulator.
type Addr uint32

// AddrFrom4 assembles an address from its four dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(a)<<24 | Addr(b)<<16 | Addr(c)<<8 | Addr(d)
}

// ParseAddr parses dotted-quad notation ("196.49.7.1").
func ParseAddr(s string) (Addr, error) {
	var octets [4]uint64
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: %q is not dotted-quad", s)
	}
	for i, p := range parts {
		if p == "" || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("netaddr: bad octet %q in %q", p, s)
		}
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("netaddr: bad octet %q in %q", p, s)
		}
		octets[i] = v
	}
	return AddrFrom4(byte(octets[0]), byte(octets[1]), byte(octets[2]), byte(octets[3])), nil
}

// MustParseAddr is ParseAddr that panics on error, for constants in
// tests and scenario construction.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Octets returns the four dotted-quad components.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// String renders the address in dotted-quad notation.
func (a Addr) String() string {
	o1, o2, o3, o4 := a.Octets()
	var b [15]byte
	buf := strconv.AppendUint(b[:0], uint64(o1), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(o2), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(o3), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(o4), 10)
	return string(buf)
}

// IsZero reports whether the address is the unset sentinel 0.0.0.0.
func (a Addr) IsZero() bool { return a == 0 }

// Next returns the numerically following address.
func (a Addr) Next() Addr { return a + 1 }

// AppendTo appends the wire (big-endian) representation to b.
func (a Addr) AppendTo(b []byte) []byte {
	o1, o2, o3, o4 := a.Octets()
	return append(b, o1, o2, o3, o4)
}

// Put4 writes the wire (big-endian) representation into b[0:4]. It is
// the in-place counterpart of AppendTo for serializers that have
// already sized their buffer; it panics if b holds fewer than 4 bytes.
func (a Addr) Put4(b []byte) {
	_ = b[3]
	b[0] = byte(a >> 24)
	b[1] = byte(a >> 16)
	b[2] = byte(a >> 8)
	b[3] = byte(a)
}

// AddrFromBytes decodes a big-endian 4-byte slice. It panics if b is
// shorter than 4 bytes; callers validate packet lengths first.
func AddrFromBytes(b []byte) Addr {
	return AddrFrom4(b[0], b[1], b[2], b[3])
}

// Prefix is an IPv4 CIDR block. Addr is the canonical (masked) network
// address; Bits is the prefix length in [0, 32].
type Prefix struct {
	Addr Addr
	Bits int
}

// PrefixFrom builds a canonical prefix, masking stray host bits.
func PrefixFrom(a Addr, bits int) Prefix {
	if bits < 0 {
		bits = 0
	}
	if bits > 32 {
		bits = 32
	}
	return Prefix{Addr: a & maskFor(bits), Bits: bits}
}

func maskFor(bits int) Addr {
	if bits <= 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - uint(bits)))
}

// ParsePrefix parses CIDR notation ("196.49.7.0/24").
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netaddr: %q lacks a prefix length", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: bad prefix length in %q", s)
	}
	return PrefixFrom(a, bits), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return p.Addr.String() + "/" + strconv.Itoa(p.Bits)
}

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return a&maskFor(p.Bits) == p.Addr
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Bits > q.Bits {
		p, q = q, p
	}
	return q.Addr&maskFor(p.Bits) == p.Addr
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - uint(p.Bits)) }

// First returns the lowest address in the prefix (the network address).
func (p Prefix) First() Addr { return p.Addr }

// Last returns the highest address in the prefix (the broadcast
// address for subnets shorter than /32).
func (p Prefix) Last() Addr { return p.Addr | ^maskFor(p.Bits) }

// Nth returns the n'th address within the prefix. It panics if n is
// out of range, which indicates a scenario-construction bug.
func (p Prefix) Nth(n uint64) Addr {
	if n >= p.NumAddrs() {
		panic(fmt.Sprintf("netaddr: address %d out of range for %v", n, p))
	}
	return p.Addr + Addr(n)
}

// Subnets splits the prefix into subnets of newBits length and returns
// them in address order. It panics if newBits < p.Bits.
func (p Prefix) Subnets(newBits int) []Prefix {
	if newBits < p.Bits || newBits > 32 {
		panic(fmt.Sprintf("netaddr: cannot split %v into /%d", p, newBits))
	}
	n := 1 << uint(newBits-p.Bits)
	size := Addr(1) << (32 - uint(newBits))
	out := make([]Prefix, n)
	for i := range out {
		out[i] = Prefix{Addr: p.Addr + Addr(i)*size, Bits: newBits}
	}
	return out
}

// CommonPrefixLen returns the number of leading bits a and b share,
// the key primitive for longest-prefix-match tries.
func CommonPrefixLen(a, b Addr) int {
	return bits.LeadingZeros32(uint32(a ^ b))
}

// Allocator hands out consecutive subnets from a pool prefix. The
// scenario builder uses one per address family (IXP peering LANs,
// point-to-point links, customer cones).
type Allocator struct {
	pool Prefix
	next Addr
}

// NewAllocator returns an allocator over the given pool.
func NewAllocator(pool Prefix) *Allocator {
	return &Allocator{pool: pool, next: pool.First()}
}

// Alloc carves the next /bits subnet out of the pool. It returns an
// error when the pool is exhausted.
func (al *Allocator) Alloc(bits int) (Prefix, error) {
	if bits < al.pool.Bits || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: /%d does not fit pool %v", bits, al.pool)
	}
	size := Addr(1) << (32 - uint(bits))
	// Align the cursor to the subnet size.
	aligned := (al.next + size - 1) &^ (size - 1)
	if aligned < al.next || !al.pool.Contains(aligned) || aligned+size-1 > al.pool.Last() {
		return Prefix{}, fmt.Errorf("netaddr: pool %v exhausted", al.pool)
	}
	al.next = aligned + size
	return Prefix{Addr: aligned, Bits: bits}, nil
}

// MustAlloc is Alloc that panics on exhaustion.
func (al *Allocator) MustAlloc(bits int) Prefix {
	p, err := al.Alloc(bits)
	if err != nil {
		panic(err)
	}
	return p
}
