package netaddr

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"196.49.7.1", AddrFrom4(196, 49, 7, 1), true},
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xFFFFFFFF, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.1.1.1", 0, false},
		{"1.2.3.04", 0, false}, // leading zero rejected
		{"1.2.3.", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrAppendToAndFromBytes(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		return AddrFromBytes(a.AppendTo(nil)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrBasics(t *testing.T) {
	a := MustParseAddr("10.0.0.255")
	if a.Next() != MustParseAddr("10.0.1.0") {
		t.Error("Next should carry into the third octet")
	}
	if !Addr(0).IsZero() || a.IsZero() {
		t.Error("IsZero misbehaves")
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("196.49.7.0/24")
	if p.Bits != 24 || p.Addr != MustParseAddr("196.49.7.0") {
		t.Fatalf("got %v", p)
	}
	if _, err := ParsePrefix("196.49.7.0"); err == nil {
		t.Error("missing length should fail")
	}
	if _, err := ParsePrefix("196.49.7.0/33"); err == nil {
		t.Error("length 33 should fail")
	}
	if _, err := ParsePrefix("196.49.7.0/-1"); err == nil {
		t.Error("negative length should fail")
	}
}

func TestPrefixCanonicalization(t *testing.T) {
	p := PrefixFrom(MustParseAddr("10.1.2.3"), 16)
	if p.Addr != MustParseAddr("10.1.0.0") {
		t.Fatalf("host bits not masked: %v", p)
	}
	if p.String() != "10.1.0.0/16" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("196.49.0.0/16")
	if !p.Contains(MustParseAddr("196.49.255.1")) {
		t.Error("should contain member")
	}
	if p.Contains(MustParseAddr("196.50.0.0")) {
		t.Error("should not contain outsider")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("255.255.255.255")) {
		t.Error("default route contains everything")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.200.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestPrefixFirstLastNth(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/30")
	if p.NumAddrs() != 4 {
		t.Fatalf("NumAddrs = %d", p.NumAddrs())
	}
	if p.First() != MustParseAddr("10.0.0.0") || p.Last() != MustParseAddr("10.0.0.3") {
		t.Fatalf("First/Last wrong: %v %v", p.First(), p.Last())
	}
	if p.Nth(2) != MustParseAddr("10.0.0.2") {
		t.Fatal("Nth wrong")
	}
}

func TestPrefixNthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParsePrefix("10.0.0.0/30").Nth(4)
}

func TestSubnets(t *testing.T) {
	subs := MustParsePrefix("10.0.0.0/22").Subnets(24)
	if len(subs) != 4 {
		t.Fatalf("got %d subnets", len(subs))
	}
	want := []string{"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"}
	for i, s := range subs {
		if s.String() != want[i] {
			t.Errorf("subnet %d = %v, want %v", i, s, want[i])
		}
	}
}

func TestSubnetsPartitionProperty(t *testing.T) {
	// Every address in the parent belongs to exactly one subnet.
	parent := MustParsePrefix("192.168.4.0/26")
	subs := parent.Subnets(28)
	f := func(off uint8) bool {
		a := parent.Nth(uint64(off) % parent.NumAddrs())
		n := 0
		for _, s := range subs {
			if s.Contains(a) {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a := MustParseAddr("10.0.0.0")
	if got := CommonPrefixLen(a, a); got != 32 {
		t.Errorf("identical addrs share 32 bits, got %d", got)
	}
	if got := CommonPrefixLen(MustParseAddr("128.0.0.0"), MustParseAddr("0.0.0.0")); got != 0 {
		t.Errorf("top-bit mismatch shares 0 bits, got %d", got)
	}
	if got := CommonPrefixLen(MustParseAddr("10.0.0.0"), MustParseAddr("10.0.0.128")); got != 24 {
		t.Errorf("got %d, want 24", got)
	}
}

func TestAllocatorSequential(t *testing.T) {
	al := NewAllocator(MustParsePrefix("10.0.0.0/24"))
	a := al.MustAlloc(26)
	b := al.MustAlloc(26)
	if a.String() != "10.0.0.0/26" || b.String() != "10.0.0.64/26" {
		t.Fatalf("allocs: %v %v", a, b)
	}
	if a.Overlaps(b) {
		t.Fatal("allocations must not overlap")
	}
}

func TestAllocatorAlignment(t *testing.T) {
	al := NewAllocator(MustParsePrefix("10.0.0.0/24"))
	al.MustAlloc(30) // cursor at .4
	p := al.MustAlloc(26)
	if p.String() != "10.0.0.64/26" {
		t.Fatalf("misaligned alloc: %v", p)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	al := NewAllocator(MustParsePrefix("10.0.0.0/30"))
	al.MustAlloc(31)
	al.MustAlloc(31)
	if _, err := al.Alloc(31); err == nil {
		t.Fatal("expected exhaustion")
	}
	if _, err := al.Alloc(8); err == nil {
		t.Fatal("oversized request must fail")
	}
}

func TestAllocatorNonOverlapProperty(t *testing.T) {
	al := NewAllocator(MustParsePrefix("172.16.0.0/16"))
	var got []Prefix
	for i := 0; i < 50; i++ {
		bits := 24 + i%7
		got = append(got, al.MustAlloc(bits))
	}
	for i := range got {
		for j := i + 1; j < len(got); j++ {
			if got[i].Overlaps(got[j]) {
				t.Fatalf("allocations %v and %v overlap", got[i], got[j])
			}
		}
	}
}
