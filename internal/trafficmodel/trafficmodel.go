// Package trafficmodel provides deterministic offered-load processes
// that drive the fluid queues: diurnal waveforms with weekday/weekend
// modulation, day-to-day amplitude jitter, additive noise, and
// piecewise schedules for the timed events in the paper's case studies
// (transit shutdowns, demand surges, capacity upgrades).
//
// All stochastic texture is derived by hashing (seed, time) rather than
// consuming a shared random stream, so a load function can be evaluated
// at any instant, any number of times, and always returns the same
// value — a requirement for the lazily-integrated queue model.
package trafficmodel

import (
	"math"
	"time"

	"afrixp/internal/simclock"
)

// Load is an offered-load process: bits per second at virtual time t.
// Implementations must be pure functions of t.
type Load func(simclock.Time) float64

// Constant returns a flat load.
func Constant(bps float64) Load {
	return func(simclock.Time) float64 { return bps }
}

// Diurnal describes the canonical daily demand waveform observed on
// access and peering links: a floor at night, a smooth rise through
// the morning, a peak in the afternoon/evening, and a dip around
// midnight (the GIXA–KNET series in the paper shows "an obvious
// decrease everyday around midnight").
type Diurnal struct {
	// BaseBps is the overnight floor.
	BaseBps float64
	// PeakBps is the weekday peak (the waveform maximum).
	PeakBps float64
	// PeakHour is the UTC hour of the daily maximum, e.g. 14.5.
	PeakHour float64
	// Width controls how broad the daily peak is, in hours. Larger
	// values yield longer congestion events (Δt_UD in the paper).
	Width float64
	// WeekendFactor scales (PeakBps-BaseBps) on Saturdays and Sundays;
	// the zero value means no weekend modulation. GIXA–GHANATEL and
	// QCELL–NETPAGE both showed visibly lower weekend amplitudes;
	// KNET's pattern was day-type independent.
	WeekendFactor float64
	// DayJitterFrac, if positive, scales each day's amplitude by a
	// deterministic per-day factor in [1-f, 1+f], reproducing the
	// "different amplitudes over roughly 5 months" texture of Fig. 1.
	DayJitterFrac float64
	// NoiseFrac, if positive, adds relative noise at 1-minute
	// granularity.
	NoiseFrac float64
	// Seed decorrelates jitter across links.
	Seed uint64
}

// Bps implements the Load signature.
func (d Diurnal) Bps(t simclock.Time) float64 {
	h := t.HourOfDay()
	// Wrapped distance to the peak hour in [-12, 12).
	dist := math.Mod(h-d.PeakHour+36, 24) - 12
	w := d.Width
	if w <= 0 {
		w = 3
	}
	shape := math.Exp(-dist * dist / (2 * w * w))
	amp := d.PeakBps - d.BaseBps
	if t.IsWeekend() {
		f := d.WeekendFactor
		if f == 0 {
			f = 1 // zero value means "no weekend modulation"
		}
		amp *= f
	}
	if d.DayJitterFrac > 0 {
		u := hashUnit(d.Seed, uint64(t.Day()))
		amp *= 1 + d.DayJitterFrac*(2*u-1)
	}
	v := d.BaseBps + amp*shape
	if d.NoiseFrac > 0 {
		minute := uint64(time.Duration(t) / time.Minute)
		u := hashUnit(d.Seed^0x9E3779B97F4A7C15, minute)
		v *= 1 + d.NoiseFrac*(2*u-1)
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Load adapts the Diurnal to the Load type.
func (d Diurnal) Load() Load { return d.Bps }

// Sum superimposes several load processes.
func Sum(loads ...Load) Load {
	return func(t simclock.Time) float64 {
		var v float64
		for _, l := range loads {
			v += l(t)
		}
		return v
	}
}

// Scale multiplies a load by k.
func Scale(l Load, k float64) Load {
	return func(t simclock.Time) float64 { return l(t) * k }
}

// Schedule is a piecewise load: the latest phase whose start is ≤ t
// applies. Phases must be appended in chronological order.
type Schedule struct {
	starts []simclock.Time
	loads  []Load
}

// NewSchedule starts with an initial phase active from the beginning
// of time.
func NewSchedule(initial Load) *Schedule {
	return &Schedule{starts: []simclock.Time{math.MinInt64}, loads: []Load{initial}}
}

// At switches to load l from time t onward. Panics if t precedes the
// previous phase start — schedules are authored chronologically.
func (s *Schedule) At(t simclock.Time, l Load) *Schedule {
	if t < s.starts[len(s.starts)-1] {
		panic("trafficmodel: schedule phases must be chronological")
	}
	s.starts = append(s.starts, t)
	s.loads = append(s.loads, l)
	return s
}

// Bps evaluates the schedule. Binary search keeps long schedules cheap.
func (s *Schedule) Bps(t simclock.Time) float64 {
	lo, hi := 0, len(s.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.starts[mid] <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return s.loads[lo](t)
}

// Load adapts the schedule to the Load type.
func (s *Schedule) Load() Load { return s.Bps }

// Spike returns a load that is bps during [start, end) and zero
// elsewhere — a transient demand surge.
func Spike(start, end simclock.Time, bps float64) Load {
	return func(t simclock.Time) float64 {
		if t >= start && t < end {
			return bps
		}
		return 0
	}
}

// hashUnit maps (seed, n) to a uniform float64 in [0, 1) via
// SplitMix64, giving deterministic repeatable "noise".
func hashUnit(seed, n uint64) float64 {
	z := seed + n*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
