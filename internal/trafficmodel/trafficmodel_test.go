package trafficmodel

import (
	"math"
	"testing"
	"time"

	"afrixp/internal/simclock"
)

// mon/sat return an instant at the given hour on a known Monday /
// Saturday within the campaign.
func mon(hour float64) simclock.Time {
	return simclock.Date(2016, time.March, 7).Add(time.Duration(hour * float64(time.Hour)))
}
func sat(hour float64) simclock.Time {
	return simclock.Date(2016, time.March, 5).Add(time.Duration(hour * float64(time.Hour)))
}

func TestConstant(t *testing.T) {
	l := Constant(42e6)
	if l(0) != 42e6 || l(mon(12)) != 42e6 {
		t.Fatal("Constant is not constant")
	}
}

func TestDiurnalPeakAndFloor(t *testing.T) {
	d := Diurnal{BaseBps: 10e6, PeakBps: 110e6, PeakHour: 14, Width: 3}
	peak := d.Bps(mon(14))
	floor := d.Bps(mon(2))
	if math.Abs(peak-110e6) > 1e6 {
		t.Fatalf("peak = %v, want ~110e6", peak)
	}
	if floor > 12e6 {
		t.Fatalf("floor = %v, want near base", floor)
	}
	if d.Bps(mon(12)) <= d.Bps(mon(8)) {
		t.Fatal("load must rise toward the peak hour")
	}
}

func TestDiurnalWrapsAroundMidnight(t *testing.T) {
	// A peak at hour 23 must influence hour 1 of the next day
	// symmetrically with hour 21.
	d := Diurnal{BaseBps: 0, PeakBps: 100e6, PeakHour: 23, Width: 3}
	before := d.Bps(mon(21))
	after := d.Bps(mon(25)) // 01:00 Tuesday
	if math.Abs(before-after) > 1e-6*before {
		t.Fatalf("waveform not symmetric across midnight: %v vs %v", before, after)
	}
}

func TestDiurnalWeekendModulation(t *testing.T) {
	d := Diurnal{BaseBps: 10e6, PeakBps: 110e6, PeakHour: 14, Width: 3, WeekendFactor: 0.4}
	wk := d.Bps(mon(14))
	we := d.Bps(sat(14))
	wantWe := 10e6 + 0.4*100e6
	if math.Abs(we-wantWe) > 1e6 {
		t.Fatalf("weekend peak = %v, want ~%v", we, wantWe)
	}
	if we >= wk {
		t.Fatal("weekend peak must be lower")
	}
}

func TestDiurnalZeroWeekendFactorMeansUnmodulated(t *testing.T) {
	d := Diurnal{BaseBps: 10e6, PeakBps: 110e6, PeakHour: 14, Width: 3}
	if math.Abs(d.Bps(sat(14))-d.Bps(mon(14))) > 1e-6 {
		t.Fatal("zero WeekendFactor should leave weekends unmodulated")
	}
}

func TestDiurnalDeterminism(t *testing.T) {
	d := Diurnal{BaseBps: 5e6, PeakBps: 50e6, PeakHour: 13, Width: 2,
		DayJitterFrac: 0.3, NoiseFrac: 0.1, Seed: 99}
	for _, tm := range []simclock.Time{mon(3), mon(13.5), sat(20)} {
		if d.Bps(tm) != d.Bps(tm) {
			t.Fatal("load must be a pure function of time")
		}
	}
}

func TestDayJitterVariesAcrossDays(t *testing.T) {
	d := Diurnal{BaseBps: 0, PeakBps: 100e6, PeakHour: 14, Width: 3,
		DayJitterFrac: 0.4, Seed: 7}
	a := d.Bps(mon(14))
	b := d.Bps(mon(14).Add(24 * time.Hour)) // Tuesday same hour
	if a == b {
		t.Fatal("day jitter should differentiate days")
	}
	// Jitter is bounded.
	for day := 0; day < 50; day++ {
		v := d.Bps(mon(14).Add(time.Duration(day) * 24 * time.Hour))
		if v < 0.55*100e6 || v > 1.45*100e6 {
			t.Fatalf("day %d jittered out of bounds: %v", day, v)
		}
	}
}

func TestNoiseIsBoundedAndNonNegative(t *testing.T) {
	d := Diurnal{BaseBps: 1e6, PeakBps: 2e6, PeakHour: 12, Width: 4, NoiseFrac: 0.5, Seed: 3}
	for i := 0; i < 10000; i++ {
		v := d.Bps(simclock.Time(time.Duration(i) * time.Minute))
		if v < 0 {
			t.Fatalf("negative load at minute %d", i)
		}
	}
}

func TestSeedDecorrelates(t *testing.T) {
	a := Diurnal{BaseBps: 0, PeakBps: 100e6, PeakHour: 14, Width: 3, NoiseFrac: 0.3, Seed: 1}
	b := a
	b.Seed = 2
	same := 0
	for i := 0; i < 100; i++ {
		tm := mon(10).Add(time.Duration(i) * time.Minute)
		if a.Bps(tm) == b.Bps(tm) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds agreed on %d/100 samples", same)
	}
}

func TestSumAndScale(t *testing.T) {
	l := Sum(Constant(10), Constant(5))
	if l(0) != 15 {
		t.Fatal("Sum wrong")
	}
	if Scale(Constant(10), 2.5)(0) != 25 {
		t.Fatal("Scale wrong")
	}
}

func TestScheduleSwitchesPhases(t *testing.T) {
	s := NewSchedule(Constant(10)).
		At(mon(0), Constant(20)).
		At(mon(24), Constant(30))
	if got := s.Bps(sat(0)); got != 10 { // before Monday
		t.Fatalf("initial phase = %v", got)
	}
	if got := s.Bps(mon(5)); got != 20 {
		t.Fatalf("second phase = %v", got)
	}
	if got := s.Bps(mon(0)); got != 20 {
		t.Fatal("phase boundary must belong to the new phase")
	}
	if got := s.Bps(mon(300)); got != 30 {
		t.Fatalf("final phase = %v", got)
	}
}

func TestSchedulePanicsOnOutOfOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSchedule(Constant(1)).At(mon(24), Constant(2)).At(mon(0), Constant(3))
}

func TestScheduleManyPhases(t *testing.T) {
	s := NewSchedule(Constant(0))
	for i := 1; i <= 100; i++ {
		v := float64(i)
		s.At(simclock.Time(time.Duration(i)*time.Hour), Constant(v))
	}
	for i := 1; i <= 100; i++ {
		tm := simclock.Time(time.Duration(i)*time.Hour + 30*time.Minute)
		if got := s.Bps(tm); got != float64(i) {
			t.Fatalf("phase %d: got %v", i, got)
		}
	}
}

func TestSpike(t *testing.T) {
	sp := Spike(mon(10), mon(12), 5e6)
	if sp(mon(9.9)) != 0 || sp(mon(12)) != 0 {
		t.Fatal("spike active outside window")
	}
	if sp(mon(10)) != 5e6 || sp(mon(11.5)) != 5e6 {
		t.Fatal("spike inactive inside window")
	}
}

func TestHashUnitDistribution(t *testing.T) {
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		u := hashUnit(12345, uint64(i))
		if u < 0 || u >= 1 {
			t.Fatalf("hashUnit out of range: %v", u)
		}
		sum += u
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("hashUnit mean = %v, want ~0.5", mean)
	}
}
