// Package levelshift turns a TSLP RTT series into congestion-style
// level-shift events, following §5.2 of the paper: 5-minute latency
// samples are minimum-filtered, the rank-based CUSUM detector finds
// level changes, shifts shorter than 30 minutes or smaller than the
// magnitude threshold (10 ms by default, with 5/15/20 ms used in the
// sensitivity analysis of Table 1) are discarded, and the surviving
// upshift/downshift pairs become events whose average magnitude A_w
// and average duration Δt_UD characterize the congestion waveform.
package levelshift

import (
	"sort"
	"time"

	"afrixp/internal/cusum"
	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

// Config tunes the analysis.
type Config struct {
	// ThresholdMs is the minimum elevation above baseline (in ms) for
	// a segment to count as shifted. The paper defaults to 10 ms.
	ThresholdMs float64
	// MinDuration is the minimum event length; the paper uses 30 min.
	MinDuration simclock.Duration
	// AggregateTo pre-aggregates the series with a minimum filter to
	// this bin width before detection (noise suppression). Zero keeps
	// the native resolution.
	AggregateTo simclock.Duration
	// Cusum configures the underlying change-point detector.
	Cusum cusum.Config
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		ThresholdMs: 10,
		MinDuration: 30 * time.Minute,
		AggregateTo: 30 * time.Minute,
		Cusum:       cusum.Config{Bootstraps: 60, Confidence: 0.95, MinSegment: 2},
	}
}

// Event is one congestion episode: the span between an upshift away
// from baseline and the downshift back.
type Event struct {
	Start, End simclock.Time
	// Magnitude is the mean elevation above baseline, in the series'
	// units (ms).
	Magnitude float64
	// OpenEnded marks an event still elevated when the series ends
	// (sustained congestion, like GIXA–KNET through the end of the
	// campaign).
	OpenEnded bool
}

// Duration returns the event length (Δt between upshift and downshift).
func (e Event) Duration() simclock.Duration { return e.End.Sub(e.Start) }

// Result is the analysis output.
type Result struct {
	// Shifts are the raw accepted change points (indices refer to the
	// analyzed — possibly aggregated — series).
	Shifts []cusum.ChangePoint
	// Events are the baseline-exceeding episodes.
	Events []Event
	// Baseline is the inferred uncongested level (ms).
	Baseline float64
	// Series is the series the detector actually ran on.
	Series *timeseries.Series
}

// Flagged reports whether the link would be labeled potentially
// congested at the configured threshold: at least one event.
func (r Result) Flagged() bool { return len(r.Events) > 0 }

// AW returns the average event magnitude (mean elevation above
// baseline per event), or 0 when no events exist.
func (r Result) AW() float64 {
	if len(r.Events) == 0 {
		return 0
	}
	var sum float64
	for _, e := range r.Events {
		sum += e.Magnitude
	}
	return sum / float64(len(r.Events))
}

// ShiftAW returns the average magnitude of the accepted level shifts
// themselves — the paper's A_w ("the average magnitude between
// consecutive upshift and downshift"). For a clean plateau both
// definitions agree; for ramped waveforms the CUSUM steps climb in
// stages and ShiftAW sits below the plateau height.
func (r Result) ShiftAW() float64 {
	if len(r.Shifts) == 0 {
		return 0
	}
	var sum float64
	for _, cp := range r.Shifts {
		m := cp.Magnitude()
		if m < 0 {
			m = -m
		}
		sum += m
	}
	return sum / float64(len(r.Shifts))
}

// MeanDuration returns the average time between consecutive upshift
// and downshift (the paper's Δt_UD). Open-ended events are excluded.
func (r Result) MeanDuration() simclock.Duration {
	var sum simclock.Duration
	n := 0
	for _, e := range r.Events {
		if e.OpenEnded {
			continue
		}
		sum += e.Duration()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / simclock.Duration(n)
}

// Analyze runs the full §5.2 pipeline on a series: the
// threshold-independent detection phase (Detect) followed by
// classification at cfg.ThresholdMs (Detection.AtThreshold).
func Analyze(s *timeseries.Series, cfg Config) Result {
	return Detect(s, cfg).AtThreshold(cfg.ThresholdMs)
}

// Detection is the threshold-independent half of the analysis: the
// aggregated series, the NaN-compacted samples with their grid
// mapping, the global baseline, and the per-window CUSUM candidate
// lists. It is the expensive part — segmentation plus bootstrap — and
// none of it depends on the magnitude threshold, so a Table-1 style
// sensitivity sweep computes it once and calls AtThreshold per
// threshold.
type Detection struct {
	// Series is the series the detector actually ran on (after
	// min-filter aggregation).
	Series *timeseries.Series
	// Baseline is the inferred uncongested level (ms): the global 10th
	// percentile of the compacted samples.
	Baseline float64

	cfg Config   // captured analysis config (ThresholdMs unused)
	scr *Scratch // compacted samples, candidate arena, work buffers
	win int      // detection window length in samples
}

// Scratch is the reusable working memory behind a Detection: the
// NaN-compacted samples, the per-window candidate arena, and the
// buffers AtThreshold churns through per magnitude threshold. A sweep
// worker threads one Scratch per series role across every link it
// analyzes; nothing retained by Result aliases it. A Detection is only
// valid until its Scratch is reused by a later DetectScratch call.
type Scratch struct {
	vals      []float64 // present samples, NaNs compacted away
	slots     []int     // vals[i] came from the analyzed series' grid slot slots[i]
	cands     []cusum.Candidate
	candOff   []int // window w's candidates = cands[candOff[w]:candOff[w+1]]
	elevation []float64
	bounds    []int
	sortBuf   []float64
	cpBuf     []cusum.ChangePoint
	keptBuf   []int
}

// median computes the median of vs through the scratch sort buffer —
// bit-identical to timeseries.Median (same sort, same interpolation),
// without the per-call clone.
func (scr *Scratch) median(vs []float64) float64 {
	scr.sortBuf = append(scr.sortBuf[:0], vs...)
	sort.Float64s(scr.sortBuf)
	return timeseries.QuantileSorted(scr.sortBuf, 0.5)
}

// Detect runs the detection phase on a series; cfg.ThresholdMs is
// ignored (that is AtThreshold's parameter).
//
// Detection is windowed: the CUSUM chart of a year-long periodic
// signal is not significant against bootstrap shuffles (the shuffled
// random walk out-ranges the periodic one), so — as TSLP analyses do
// in practice — the detector segments one-day windows independently
// and elevation runs are merged across window boundaries. The
// baseline is the global 10th percentile of the (min-filtered)
// series, i.e. the uncongested floor.
func Detect(s *timeseries.Series, cfg Config) *Detection {
	// One detector for all windows: its scratch buffers (rank
	// transform, bootstrap shuffle) are the analysis phase's dominant
	// allocations. Each window reseeds, so results match per-window
	// cusum.Detect calls bit for bit.
	ccfg := cfg.Cusum
	ccfg.UseRanks = true // the paper's non-parametric variant
	return DetectWith(cusum.NewDetector(ccfg), s, cfg)
}

// DetectWith is Detect reusing a caller-owned cusum.Detector's scratch
// buffers — campaign fan-outs thread one detector per worker across
// every link they analyze. The detector is reconfigured from cfg, so
// its prior configuration does not matter; results are bit-identical
// to Detect.
func DetectWith(det *cusum.Detector, s *timeseries.Series, cfg Config) *Detection {
	return DetectScratch(det, s, cfg, &Scratch{})
}

// DetectScratch is DetectWith with caller-owned working memory: the
// compaction buffers and the per-window candidate arena come from scr
// instead of fresh allocations. The returned Detection reads through
// scr and is invalidated by the next DetectScratch call with the same
// scratch. Results are bit-identical to Detect.
func DetectScratch(det *cusum.Detector, s *timeseries.Series, cfg Config, scr *Scratch) *Detection {
	work := s
	if cfg.AggregateTo > 0 && cfg.AggregateTo > s.Step {
		factor := int(cfg.AggregateTo / s.Step)
		work = s.Aggregate(factor, timeseries.Min)
	}
	// The CUSUM detector cannot carry NaNs; compact the present
	// samples and keep the index mapping back to grid slots. Each
	// streams chunk-backed series one decoded block at a time — the
	// analysis never materializes the full grid.
	scr.vals = scr.vals[:0]
	scr.slots = scr.slots[:0]
	work.Each(func(base int, vs []float64) {
		for k, v := range vs {
			if !timeseries.IsMissing(v) {
				scr.vals = append(scr.vals, v)
				scr.slots = append(scr.slots, base+k)
			}
		}
	})
	vals := scr.vals
	d := &Detection{Series: work, cfg: cfg, scr: scr}
	if len(vals) < 4 {
		return d
	}
	scr.sortBuf = append(scr.sortBuf[:0], vals...)
	sort.Float64s(scr.sortBuf)
	d.Baseline = timeseries.QuantileSorted(scr.sortBuf, 0.10)

	d.win = 48
	if work.Step > 0 {
		if n := int(24 * time.Hour / work.Step); n >= 8 {
			d.win = n
		}
	}
	ccfg := cfg.Cusum
	ccfg.UseRanks = true
	det.Reconfigure(ccfg)
	scr.cands = scr.cands[:0]
	scr.candOff = append(scr.candOff[:0], 0)
	for lo := 0; lo < len(vals); lo += d.win {
		hi := lo + d.win
		if hi > len(vals) {
			hi = len(vals)
		}
		scr.cands = det.AppendCandidates(scr.cands, vals[lo:hi], ccfg.Seed+int64(lo))
		scr.candOff = append(scr.candOff, len(scr.cands))
	}
	return d
}

// AtThreshold runs the cheap per-threshold classification phase:
// magnitude-filter the shared candidates, classify elevated segments,
// merge elevation runs, and assemble events. O(n) plus the magnitude
// filter — no bootstrap. Bit-identical to Analyze with
// cfg.ThresholdMs = thresholdMs.
func (d *Detection) AtThreshold(thresholdMs float64) Result {
	res := Result{Series: d.Series}
	scr := d.scr
	if len(scr.vals) < 4 {
		return res
	}
	res.Baseline = d.Baseline
	base := d.Baseline
	vals := scr.vals
	minMag := thresholdMs / 2 // sub-noise wiggles die here

	// elevation[i] > 0 marks compacted sample i as part of a shifted
	// segment, carrying the segment's elevation above baseline.
	if cap(scr.elevation) < len(vals) {
		scr.elevation = make([]float64, len(vals))
	}
	elevation := scr.elevation[:len(vals)]
	for i := range elevation {
		elevation[i] = 0
	}
	for w, lo := 0, 0; lo < len(vals); w, lo = w+1, lo+d.win {
		hi := lo + d.win
		if hi > len(vals) {
			hi = len(vals)
		}
		win := vals[lo:hi]
		var cps []cusum.ChangePoint
		scr.cpBuf, scr.keptBuf = cusum.ApplyMagnitudeInto(
			scr.cpBuf[:0], scr.keptBuf, win, scr.cands[scr.candOff[w]:scr.candOff[w+1]], minMag)
		cps = scr.cpBuf
		for _, cp := range cps {
			cp.Index += lo
			res.Shifts = append(res.Shifts, cp)
		}
		bounds := append(scr.bounds[:0], 0)
		for _, cp := range cps {
			bounds = append(bounds, cp.Index)
		}
		bounds = append(bounds, len(win))
		scr.bounds = bounds
		for k := 0; k+1 < len(bounds); k++ {
			a, b := bounds[k], bounds[k+1]
			if b <= a {
				continue
			}
			level := scr.median(win[a:b])
			if level-base >= thresholdMs {
				for i := lo + a; i < lo+b; i++ {
					elevation[i] = level - base
				}
			}
		}
	}

	// Direct run detection complements the windowed CUSUM: a clear,
	// sustained excursion above the threshold that occupies a small
	// fraction of its window can fail the bootstrap significance test
	// even though it is a textbook level shift (GIXA–KNET's ~2-hour
	// daily events are 4–5 bins of a 48-bin day). Runs of at least two
	// consecutive samples elevated ≥ threshold are level shifts by
	// construction — the series is already minimum-filtered, so noise
	// spikes cannot form such runs.
	for i := 0; i < len(vals); {
		if vals[i]-base < thresholdMs {
			i++
			continue
		}
		j := i
		for j < len(vals) && vals[j]-base >= thresholdMs {
			j++
		}
		if j-i >= 2 {
			for k := i; k < j; k++ {
				if e := vals[k] - base; e > elevation[k] {
					elevation[k] = e
				}
			}
		}
		i = j
	}

	// Events: maximal elevated runs over the compacted samples.
	var events []Event
	i := 0
	for i < len(elevation) {
		if elevation[i] <= 0 {
			i++
			continue
		}
		j := i
		var sum float64
		for j < len(elevation) && elevation[j] > 0 {
			sum += elevation[j]
			j++
		}
		events = append(events, Event{
			Start:     d.Series.TimeAt(scr.slots[i]),
			End:       d.Series.TimeAt(scr.slots[j-1] + 1),
			Magnitude: sum / float64(j-i),
			OpenEnded: j == len(elevation),
		})
		i = j
	}
	res.Events = filterShort(events, d.cfg.MinDuration)
	return res
}

// offsetShifts rebases change-point indices from window space into the
// compacted series. AtThreshold inlines this into its scratch loop;
// the helper remains as the reference the two-phase equivalence test
// rebuilds the single-shot pipeline from.
func offsetShifts(cps []cusum.ChangePoint, off int) []cusum.ChangePoint {
	out := make([]cusum.ChangePoint, len(cps))
	for i, cp := range cps {
		cp.Index += off
		out[i] = cp
	}
	return out
}

// filterShort drops events shorter than minDur (open-ended events are
// kept regardless — their true end is unknown).
func filterShort(events []Event, minDur simclock.Duration) []Event {
	if minDur <= 0 {
		return events
	}
	out := events[:0]
	for _, e := range events {
		if e.OpenEnded || e.Duration() >= minDur {
			out = append(out, e)
		}
	}
	return out
}

// Sanitize merges events separated by gaps shorter than maxGap (the
// detector often splinters one congestion episode when RTTs graze the
// threshold) and then re-drops events shorter than minDur. The paper
// sanitizes level shifts before computing Δt_UD for GIXA–KNET.
func Sanitize(events []Event, maxGap, minDur simclock.Duration) []Event {
	if len(events) == 0 {
		return events
	}
	merged := []Event{events[0]}
	for _, e := range events[1:] {
		last := &merged[len(merged)-1]
		if e.Start.Sub(last.End) <= maxGap {
			// Weighted merge of magnitudes by duration.
			d1 := float64(last.Duration())
			d2 := float64(e.Duration())
			if d1+d2 > 0 {
				last.Magnitude = (last.Magnitude*d1 + e.Magnitude*d2) / (d1 + d2)
			}
			last.End = e.End
			last.OpenEnded = e.OpenEnded
		} else {
			merged = append(merged, e)
		}
	}
	return filterShort(merged, minDur)
}
