package levelshift

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

// diurnalSeries builds `days` days of 5-minute RTT samples: baseline
// RTT with a plateau of +magnitude ms between startHour and endHour
// every day, plus Gaussian noise.
func diurnalSeries(days int, baseline, magnitude float64, startHour, endHour int, noise float64, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	s := timeseries.NewRegular(0, 5*time.Minute, days*288)
	for i := 0; i < s.Len(); i++ {
		h := s.TimeAt(i).HourOfDay()
		v := baseline
		if h >= float64(startHour) && h < float64(endHour) {
			v += magnitude
		}
		s.Set(i, v+math.Abs(noise*rng.NormFloat64()))
	}
	return s
}

func TestFlatSeriesNotFlagged(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := timeseries.NewRegular(0, 5*time.Minute, 7*288)
	for i := 0; i < s.Len(); i++ {
		s.Set(i, 2+math.Abs(0.5*rng.NormFloat64()))
	}
	res := Analyze(s, DefaultConfig())
	if res.Flagged() {
		t.Fatalf("flat series flagged: %+v", res.Events)
	}
}

func TestDiurnalCongestionDetected(t *testing.T) {
	// 10 days, 28 ms plateau from 09:00 to 17:00 — the GIXA–GHANATEL
	// shape. Expect ~10 events of ~8h duration and ~28 ms magnitude.
	s := diurnalSeries(10, 2, 28, 9, 17, 0.5, 2)
	res := Analyze(s, DefaultConfig())
	if !res.Flagged() {
		t.Fatal("congested series not flagged")
	}
	if n := len(res.Events); n < 8 || n > 12 {
		t.Fatalf("events = %d, want ~10", n)
	}
	aw := res.AW()
	if aw < 24 || aw > 32 {
		t.Fatalf("A_w = %v, want ~28", aw)
	}
	d := res.MeanDuration()
	if d < 6*time.Hour || d > 10*time.Hour {
		t.Fatalf("Δt_UD = %v, want ~8h", d)
	}
	if res.Baseline > 4 {
		t.Fatalf("baseline = %v, want ~2", res.Baseline)
	}
}

func TestThresholdSensitivity(t *testing.T) {
	// A 12 ms plateau: flagged at 5 and 10 ms, not at 15 or 20 ms —
	// the Table 1 mechanism.
	s := diurnalSeries(10, 2, 12, 10, 16, 0.4, 3)
	for _, tc := range []struct {
		threshold float64
		flagged   bool
	}{{5, true}, {10, true}, {15, false}, {20, false}} {
		cfg := DefaultConfig()
		cfg.ThresholdMs = tc.threshold
		res := Analyze(s, cfg)
		if res.Flagged() != tc.flagged {
			t.Errorf("threshold %v ms: flagged=%v, want %v (A_w %v)",
				tc.threshold, res.Flagged(), tc.flagged, res.AW())
		}
	}
}

func TestShortBlipsFiltered(t *testing.T) {
	// 15-minute spikes must not be flagged at MinDuration 30 min.
	rng := rand.New(rand.NewSource(4))
	s := timeseries.NewRegular(0, 5*time.Minute, 5*288)
	for i := 0; i < s.Len(); i++ {
		v := 2 + math.Abs(0.3*rng.NormFloat64())
		if i%288 < 3 { // 15 minutes once a day
			v += 40
		}
		s.Set(i, v)
	}
	cfg := DefaultConfig()
	res := Analyze(s, cfg)
	if res.Flagged() {
		t.Fatalf("15-minute blips flagged as congestion: %+v", res.Events)
	}
}

func TestOpenEndedSustainedCongestion(t *testing.T) {
	// RTT elevates halfway through and never recovers (GHANATEL phase
	// transition): one open-ended event.
	rng := rand.New(rand.NewSource(5))
	s := timeseries.NewRegular(0, 5*time.Minute, 6*288)
	for i := 0; i < s.Len(); i++ {
		v := 2.0
		if i >= s.Len()/2 {
			v = 30
		}
		s.Set(i, v+math.Abs(0.4*rng.NormFloat64()))
	}
	res := Analyze(s, DefaultConfig())
	if len(res.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(res.Events))
	}
	if !res.Events[0].OpenEnded {
		t.Fatal("sustained elevation must be open-ended")
	}
	if res.MeanDuration() != 0 {
		t.Fatal("open-ended events are excluded from Δt_UD")
	}
}

func TestMissingSamplesTolerated(t *testing.T) {
	// 20% random loss must not break detection.
	s := diurnalSeries(10, 2, 25, 9, 17, 0.5, 6)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < s.Len(); i++ {
		if rng.Float64() < 0.2 {
			s.Set(i, timeseries.Missing)
		}
	}
	res := Analyze(s, DefaultConfig())
	if !res.Flagged() {
		t.Fatal("lossy congested series not flagged")
	}
	if aw := res.AW(); aw < 20 || aw > 30 {
		t.Fatalf("A_w = %v", aw)
	}
}

func TestEmptyAndTinySeries(t *testing.T) {
	if Analyze(timeseries.NewRegular(0, time.Minute, 0), DefaultConfig()).Flagged() {
		t.Fatal("empty series flagged")
	}
	s := timeseries.NewRegular(0, 5*time.Minute, 3)
	s.Set(0, 1)
	if Analyze(s, DefaultConfig()).Flagged() {
		t.Fatal("tiny series flagged")
	}
}

func TestSanitizeMergesSplinteredEvents(t *testing.T) {
	h := func(hrs int) simclock.Time { return simclock.Time(time.Duration(hrs) * time.Hour) }
	events := []Event{
		{Start: h(0), End: h(2), Magnitude: 18},
		{Start: h(2) + simclock.Time(20*time.Minute), End: h(4), Magnitude: 16},
		{Start: h(10), End: h(12), Magnitude: 20},
	}
	out := Sanitize(events, 30*time.Minute, 30*time.Minute)
	if len(out) != 2 {
		t.Fatalf("sanitized to %d events, want 2", len(out))
	}
	if out[0].End != h(4) {
		t.Fatalf("merged event end = %v", out[0].End)
	}
	if out[0].Magnitude < 16 || out[0].Magnitude > 18 {
		t.Fatalf("merged magnitude = %v", out[0].Magnitude)
	}
	if out[1].Start != h(10) {
		t.Fatal("distant event must stay separate")
	}
}

func TestSanitizeDropsShortAfterMerge(t *testing.T) {
	h := func(m int) simclock.Time { return simclock.Time(time.Duration(m) * time.Minute) }
	events := []Event{{Start: h(0), End: h(10), Magnitude: 15}}
	if got := Sanitize(events, time.Minute, 30*time.Minute); len(got) != 0 {
		t.Fatalf("short event survived sanitize: %+v", got)
	}
	if got := Sanitize(nil, time.Minute, time.Minute); len(got) != 0 {
		t.Fatal("nil events must stay empty")
	}
}

func TestAWAndDurationEmpty(t *testing.T) {
	var r Result
	if r.AW() != 0 || r.MeanDuration() != 0 {
		t.Fatal("empty result metrics must be zero")
	}
}

func TestAggregationRespectsStep(t *testing.T) {
	s := diurnalSeries(5, 2, 25, 9, 17, 0.5, 8)
	cfg := DefaultConfig()
	cfg.AggregateTo = 30 * time.Minute
	res := Analyze(s, cfg)
	if res.Series.Step != 30*time.Minute {
		t.Fatalf("analyzed step = %v", res.Series.Step)
	}
	// Aggregation to a width below the native step keeps the series.
	cfg.AggregateTo = time.Minute
	res = Analyze(s, cfg)
	if res.Series.Step != 5*time.Minute {
		t.Fatal("sub-native aggregation must be a no-op")
	}
}
