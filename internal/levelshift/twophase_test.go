package levelshift

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"afrixp/internal/cusum"
	"afrixp/internal/timeseries"
)

// analyzeReference is the original single-shot §5.2 pipeline, kept
// verbatim as the oracle for the two-phase Detect/AtThreshold path. It
// re-runs the full windowed CUSUM (via the package-level cusum.Detect,
// with MinMagnitude folded into the detector config) at its one
// threshold — exactly what Analyze did before detection and
// classification were split.
func analyzeReference(s *timeseries.Series, cfg Config) Result {
	work := s
	if cfg.AggregateTo > 0 && cfg.AggregateTo > s.Step {
		factor := int(cfg.AggregateTo / s.Step)
		work = s.Aggregate(factor, timeseries.Min)
	}
	vals := make([]float64, 0, work.Len())
	slots := make([]int, 0, work.Len())
	for i, v := range work.Values {
		if !timeseries.IsMissing(v) {
			vals = append(vals, v)
			slots = append(slots, i)
		}
	}
	res := Result{Series: work}
	if len(vals) < 4 {
		return res
	}
	base := timeseries.Quantile(vals, 0.10)
	res.Baseline = base

	winSamples := 48
	if work.Step > 0 {
		if n := int(24 * time.Hour / work.Step); n >= 8 {
			winSamples = n
		}
	}
	ccfg := cfg.Cusum
	ccfg.MinMagnitude = cfg.ThresholdMs / 2

	elevation := make([]float64, len(vals))
	for lo := 0; lo < len(vals); lo += winSamples {
		hi := lo + winSamples
		if hi > len(vals) {
			hi = len(vals)
		}
		win := vals[lo:hi]
		wcfg := ccfg
		wcfg.Seed = ccfg.Seed + int64(lo)
		cps := cusum.Detect(win, wcfg)
		res.Shifts = append(res.Shifts, offsetShifts(cps, lo)...)
		bounds := []int{0}
		for _, cp := range cps {
			bounds = append(bounds, cp.Index)
		}
		bounds = append(bounds, len(win))
		for k := 0; k+1 < len(bounds); k++ {
			a, b := bounds[k], bounds[k+1]
			if b <= a {
				continue
			}
			level := timeseries.Median(win[a:b])
			if level-base >= cfg.ThresholdMs {
				for i := lo + a; i < lo+b; i++ {
					elevation[i] = level - base
				}
			}
		}
	}

	for i := 0; i < len(vals); {
		if vals[i]-base < cfg.ThresholdMs {
			i++
			continue
		}
		j := i
		for j < len(vals) && vals[j]-base >= cfg.ThresholdMs {
			j++
		}
		if j-i >= 2 {
			for k := i; k < j; k++ {
				if e := vals[k] - base; e > elevation[k] {
					elevation[k] = e
				}
			}
		}
		i = j
	}

	var events []Event
	i := 0
	for i < len(elevation) {
		if elevation[i] <= 0 {
			i++
			continue
		}
		j := i
		var sum float64
		for j < len(elevation) && elevation[j] > 0 {
			sum += elevation[j]
			j++
		}
		events = append(events, Event{
			Start:     work.TimeAt(slots[i]),
			End:       work.TimeAt(slots[j-1] + 1),
			Magnitude: sum / float64(j-i),
			OpenEnded: j == len(elevation),
		})
		i = j
	}
	res.Events = filterShort(events, cfg.MinDuration)
	return res
}

// resultsBitIdentical compares two Results at the IEEE-bit level
// (NaN-holed series defeat reflect.DeepEqual).
func resultsBitIdentical(a, b Result) bool {
	if math.Float64bits(a.Baseline) != math.Float64bits(b.Baseline) {
		return false
	}
	if len(a.Shifts) != len(b.Shifts) || len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Shifts {
		x, y := a.Shifts[i], b.Shifts[i]
		if x.Index != y.Index ||
			math.Float64bits(x.Confidence) != math.Float64bits(y.Confidence) ||
			math.Float64bits(x.Before) != math.Float64bits(y.Before) ||
			math.Float64bits(x.After) != math.Float64bits(y.After) {
			return false
		}
	}
	for i := range a.Events {
		x, y := a.Events[i], b.Events[i]
		if x.Start != y.Start || x.End != y.End || x.OpenEnded != y.OpenEnded ||
			math.Float64bits(x.Magnitude) != math.Float64bits(y.Magnitude) {
			return false
		}
	}
	if (a.Series == nil) != (b.Series == nil) {
		return false
	}
	if a.Series != nil {
		if a.Series.Len() != b.Series.Len() || a.Series.Step != b.Series.Step {
			return false
		}
		for i, v := range a.Series.Values {
			if math.Float64bits(v) != math.Float64bits(b.Series.Values[i]) {
				return false
			}
		}
	}
	return true
}

// propertySeries builds a random series with diurnal plateaus, level
// regimes, gaps, and events that straddle detection-window boundaries.
func propertySeries(seed int64, days int, gapFrac float64, shape uint8) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	s := timeseries.NewRegular(0, 5*time.Minute, days*288)
	level := 0.0
	for i := 0; i < s.Len(); i++ {
		t := s.TimeAt(i)
		v := 3 + math.Abs(0.5*rng.NormFloat64())
		switch shape % 4 {
		case 0: // daytime plateau (window-interior events)
			if h := t.HourOfDay(); h >= 9 && h < 16 {
				v += 14
			}
		case 1: // plateau straddling midnight, i.e. the window boundary
			if h := t.HourOfDay(); h >= 21 || h < 4 {
				v += 18
			}
		case 2: // random regime shifts (slow-ICMP lookalike)
			if rng.Intn(200) == 0 {
				if level == 0 {
					level = 12 + 10*rng.Float64()
				} else {
					level = 0
				}
			}
			v += level
		case 3: // flat with one mid-series permanent shift
			if i >= s.Len()/2 {
				v += 16
			}
		}
		s.Set(i, v)
	}
	// Gaps: missing samples, in runs, so compaction shifts windows.
	for i := 0; i < s.Len(); i++ {
		if rng.Float64() < gapFrac {
			run := 1 + rng.Intn(6)
			for k := i; k < i+run && k < s.Len(); k++ {
				s.Set(k, timeseries.Missing)
			}
			i += run
		}
	}
	return s
}

// TestQuickTwoPhaseMatchesSingleShot is the sweep's core property: for
// random series (gap patterns included) and random thresholds,
// Detect(...).AtThreshold(t) is bit-identical to the original
// single-shot pipeline at threshold t — and one Detection serves every
// threshold.
func TestQuickTwoPhaseMatchesSingleShot(t *testing.T) {
	f := func(seed int64, days8, shape uint8, thr8 uint8, gap8 uint8) bool {
		days := int(days8%6) + 2
		gapFrac := float64(gap8%30) / 100
		cfg := DefaultConfig()
		cfg.Cusum.Seed = seed % 1000
		s := propertySeries(seed, days, gapFrac, shape)

		det := Detect(s, cfg)
		thresholds := []float64{5, 10, 15, 20, float64(thr8%25) + 1}
		for _, thr := range thresholds {
			ref := cfg
			ref.ThresholdMs = thr
			want := analyzeReference(s, ref)
			if !resultsBitIdentical(det.AtThreshold(thr), want) {
				t.Logf("mismatch: seed=%d days=%d shape=%d gap=%.2f thr=%g",
					seed, days, shape%4, gapFrac, thr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestTwoPhaseTinyAndEmptySeries pins the degenerate paths: empty
// series, all-missing series, and series below the 4-sample floor must
// agree with the reference at every threshold.
func TestTwoPhaseTinyAndEmptySeries(t *testing.T) {
	cfg := DefaultConfig()
	cases := []*timeseries.Series{
		timeseries.NewRegular(0, time.Minute, 0),
		timeseries.NewRegular(0, 5*time.Minute, 3),
		func() *timeseries.Series {
			s := timeseries.NewRegular(0, 5*time.Minute, 50)
			for i := 0; i < s.Len(); i++ {
				s.Set(i, timeseries.Missing)
			}
			return s
		}(),
	}
	for ci, s := range cases {
		det := Detect(s, cfg)
		for _, thr := range []float64{5, 10, 20} {
			ref := cfg
			ref.ThresholdMs = thr
			if !resultsBitIdentical(det.AtThreshold(thr), analyzeReference(s, ref)) {
				t.Fatalf("case %d thr %g: degenerate series diverged", ci, thr)
			}
		}
	}
}

// TestDetectWithSharedDetector checks that one reused detector
// produces the same Detection as a fresh one per call, across series
// of different lengths (scratch carry-over must not leak).
func TestDetectWithSharedDetector(t *testing.T) {
	shared := cusum.NewDetector(cusum.Config{})
	cfg := DefaultConfig()
	for trial := 0; trial < 6; trial++ {
		s := propertySeries(int64(trial+1), trial%4+2, 0.1, uint8(trial))
		a := DetectWith(shared, s, cfg)
		b := Detect(s, cfg)
		for _, thr := range []float64{5, 10, 15, 20} {
			if !resultsBitIdentical(a.AtThreshold(thr), b.AtThreshold(thr)) {
				t.Fatalf("trial %d thr %g: shared-detector detection diverged", trial, thr)
			}
		}
	}
}
