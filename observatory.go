package afrixp

import (
	"io"
	"time"

	"afrixp/internal/analysis"
	"afrixp/internal/bdrmap"
	"afrixp/internal/budget"
	"afrixp/internal/experiments"
	"afrixp/internal/faults"
	"afrixp/internal/ixpdir"
	"afrixp/internal/levelshift"
	"afrixp/internal/monitor"
	"afrixp/internal/observatory"
	"afrixp/internal/registry"
	"afrixp/internal/report"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
	"afrixp/internal/telemetry"
	"afrixp/internal/worldgen"
)

// CampaignConfig configures a full measurement campaign: bdrmap
// discovery snapshots, TSLP probing of every discovered link, loss
// batches on the case-study links, and the threshold-sweep analysis.
type CampaignConfig struct {
	// Seed drives every deterministic process (default: fixed).
	Seed uint64
	// Scale sizes the world. At 1.0 (the default) and below it scales
	// the authored paper world's synthetic populations; above 1.0 it
	// switches to the continent-scale generator (internal/worldgen),
	// synthesizing a world at Scale× the paper's size — 10× ≈ 15 IXPs
	// and ~10^4 interdomain links, 100× ≈ 40 IXPs and ~6·10^4 links —
	// with planted, machine-checkable congestion ground truth.
	Scale float64
	// GenSeed seeds the continent-scale generator independently of
	// Seed (only read when Scale > 1; 0 = the generator's default).
	GenSeed uint64
	// Days bounds the campaign from the paper's start date; zero runs
	// the paper's full period (2016-02-22 … 2017-03-27).
	Days int
	// StartOffsetDays delays the campaign start from the epoch (used
	// to center short campaigns on specific case-study phases).
	StartOffsetDays int
	// Thresholds for the Table 1 sweep (default 5/10/15/20 ms).
	Thresholds []float64
	// DisableLoss skips the 1 pps loss campaigns.
	DisableLoss bool
	// FlatSeries stores collected RTT series as plain []float64
	// instead of the default XOR-compressed chunked backing. Results
	// are bit-identical either way; the flag exists for callers that
	// mutate collected series in place.
	FlatSeries bool
	// Workers fans probing and analysis across goroutines; results are
	// bit-identical for any value. Default runtime.GOMAXPROCS(0).
	Workers int
	// BatchSteps caps how many probing steps the scheduler hands a
	// worker per dispatch between barrier events; results are
	// bit-identical for any value. Default 1024.
	BatchSteps int
	// Shards partitions the campaign's VPs into Shards groups, each
	// with one shared compression arena bounding its resident series
	// memory; results are bit-identical for any value (see
	// internal/experiments). 0 or 1 keeps the per-VP private layout.
	Shards int
	// Faults enables the deterministic fault plan: VP outages, ICMP
	// blackouts and rate-limit duty cycles on case-link routers, and
	// link flaps, all drawn from the world seed (see internal/faults).
	// Fault boundaries become batch barriers, so results remain
	// bit-identical for any Workers / BatchSteps.
	Faults bool
	// FaultSeed perturbs the fault plan independently of Seed (only
	// read when Faults is set).
	FaultSeed uint64
	// Budget, when positive, installs the probe-budget scheduler: links
	// are ranked by marginal utility (streaming CUSUM evidence,
	// loss-rate variance, diurnal-window proximity) and probed at
	// adaptive power-of-two periods so the campaign spends at most
	// Budget of the full-rate probe count — flat links back off to a
	// heartbeat floor and plateau-stop, suspected level shifts densify
	// to full rate. Results are bit-identical per (Budget, BudgetSeed)
	// for any Workers × BatchSteps (see internal/budget). A budget of
	// 1 (or above, clamped) still runs the scheduler — every link at
	// period 1, spend parity with unscheduled probing — so full-budget
	// runs exercise the same code path as 99.9 %. 0 (the default)
	// disables the scheduler entirely.
	Budget float64
	// BudgetSeed perturbs the budget scheduler's probe interleaving
	// independently of Seed (only read when Budget is enabled).
	BudgetSeed uint64
	// CheckpointDir, when non-empty, serializes the engine's full
	// measurement state into the directory every CheckpointEvery of
	// virtual time at a batch barrier (internal/checkpoint,
	// DESIGN.md §15). Results are bit-identical with checkpointing on
	// or off.
	CheckpointDir string
	// CheckpointEvery is the virtual-time checkpoint cadence (default
	// 24 h of campaign time when CheckpointDir is set).
	CheckpointEvery time.Duration
	// Resume loads the newest valid checkpoint from CheckpointDir and
	// resumes the campaign from its barrier, bit-identical to an
	// uninterrupted run. A checkpoint from a differently-configured
	// run fails loudly; an empty directory starts fresh.
	Resume bool
	// Observatory, when non-nil, attaches the streaming observation
	// service: the engine feeds it collected slots at batch barriers,
	// its per-link online detectors walk clear → suspected → congested
	// as virtual time advances, and its HTTP API (mount beside /metrics
	// via Telemetry.Serve and Observatory.Mount) serves the live link
	// table, alert log, and SSE stream. Strictly read-side: campaign
	// results are bit-identical with or without it, and the service's
	// own alert log and end-of-campaign verdicts are bit-identical for
	// any Workers × BatchSteps × Shards (DESIGN.md §16).
	Observatory *Observatory
	// Progress, when non-nil, receives campaign progress lines.
	Progress io.Writer
	// Telemetry, when non-nil, instruments the campaign: counters,
	// per-worker utilization, and the phase span/event log, readable
	// live (Telemetry.Serve) or exported afterwards (WriteJSON).
	// Strictly read-side: results are bit-identical with or without it.
	Telemetry *Telemetry
}

// Telemetry is the campaign instrumentation root (see
// internal/telemetry): lock-free counters and histograms plus a
// span/event log with virtual- and wall-clock stamps.
type Telemetry = telemetry.Telemetry

// TelemetrySnapshot is the frozen JSON export of a Telemetry.
type TelemetrySnapshot = telemetry.Snapshot

// NewTelemetry builds a telemetry root ready to attach to a campaign.
func NewTelemetry() *Telemetry { return telemetry.New() }

// Observatory is the streaming congestion-observation service (see
// internal/observatory): per-link online level-shift detectors fed at
// batch barriers, a deterministic alert log, and a live HTTP/SSE API.
type Observatory = observatory.Service

// ObservatoryConfig tunes a streaming observatory.
type ObservatoryConfig = observatory.Config

// ObservatoryAlert is one timestamped link state transition from the
// streaming detector's clear → suspected → congested ladder.
type ObservatoryAlert = observatory.Alert

// NewObservatory builds a streaming observatory ready to attach to a
// campaign (CampaignConfig.Observatory) and to mount beside /metrics
// (Telemetry.Serve(addr, svc.Mount)).
func NewObservatory(cfg ObservatoryConfig) *Observatory { return observatory.New(cfg) }

// Campaign is the result of a full run: per-VP discovery snapshots,
// per-link verdicts, and case-study series.
type Campaign = experiments.Result

// LinkRecord is one probed link's campaign data.
type LinkRecord = experiments.LinkRecord

// Verdict is the per-link congestion analysis outcome.
type Verdict = analysis.Verdict

// Figure is one reproduced paper figure.
type Figure = experiments.Figure

// VPYield is one vantage point's uptime and sample-yield accounting
// (meaningful when the campaign ran with Faults enabled).
type VPYield = experiments.VPYield

// FaultSchedule is the injected fault plan attached to a campaign.
type FaultSchedule = faults.Schedule

// Table re-exports the report table for rendering.
type Table = report.Table

// RunCampaign executes the campaign and per-link analysis.
func RunCampaign(cfg CampaignConfig) *Campaign {
	ecfg := experiments.Config{
		Opts:        scenario.Options{Seed: cfg.Seed, Scale: cfg.Scale},
		Thresholds:  cfg.Thresholds,
		DisableLoss: cfg.DisableLoss,
		FlatSeries:  cfg.FlatSeries,
		Workers:     cfg.Workers,
		BatchSteps:  cfg.BatchSteps,
		Shards:      cfg.Shards,
		Progress:    cfg.Progress,
		Telemetry:   cfg.Telemetry,
		Observatory: cfg.Observatory,

		CheckpointDir:   cfg.CheckpointDir,
		CheckpointEvery: simclock.Duration(cfg.CheckpointEvery),
	}
	if cfg.Resume {
		ecfg.ResumeFrom = cfg.CheckpointDir
	}
	if cfg.Scale > 1 {
		// Continent scale: swap the authored paper world for a
		// generated one. Scale ≤ 1 keeps every existing invocation
		// byte-identical to before the generator existed.
		gcfg := worldgen.Options{Seed: cfg.GenSeed, Scale: cfg.Scale}
		ecfg.BuildWorld = func() *scenario.World { return worldgen.Generate(gcfg) }
	}
	if cfg.Faults {
		ecfg.Faults = &faults.Config{Seed: cfg.FaultSeed}
	}
	if cfg.Budget > 0 {
		ecfg.Budget = &budget.Config{Fraction: cfg.Budget, Seed: cfg.BudgetSeed}
	}
	start := simclock.Time(0).Add(time.Duration(cfg.StartOffsetDays) * 24 * time.Hour)
	if cfg.Days > 0 {
		ecfg.Campaign = simclock.Interval{
			Start: start,
			End:   start.Add(time.Duration(cfg.Days) * 24 * time.Hour),
		}
		if ecfg.Campaign.End > simclock.LatencyEnd {
			ecfg.Campaign.End = simclock.LatencyEnd
		}
	} else if cfg.StartOffsetDays > 0 {
		ecfg.Campaign = simclock.Interval{Start: start, End: simclock.LatencyEnd}
	}
	return experiments.Run(ecfg)
}

// Table1 computes the paper's threshold-sensitivity rows.
func Table1(c *Campaign) []experiments.Table1Row { return experiments.Table1(c) }

// Table1Report renders Table 1.
func Table1Report(c *Campaign) *Table { return experiments.Table1Report(c) }

// Table2 computes the per-VP evolution rows.
func Table2(c *Campaign) []experiments.Table2Row { return experiments.Table2(c) }

// Table2Report renders Table 2.
func Table2Report(c *Campaign) *Table { return experiments.Table2Report(c) }

// Figures extracts every reproducible figure covered by the campaign
// interval.
func Figures(c *Campaign) []Figure { return experiments.Figures(c) }

// Headline returns the per-VP congested-link rows and the overall
// congested fraction (the paper's 2.2 % result).
func Headline(c *Campaign) ([]experiments.HeadlineRow, float64) {
	return experiments.Headline(c)
}

// BdrmapAccuracy returns the mean neighbor-discovery coverage across
// all snapshots (the paper reports 96.2 %).
func BdrmapAccuracy(c *Campaign) float64 { return experiments.BdrmapAccuracy(c) }

// Waveforms returns A_w / Δt_UD per case-study link.
func Waveforms(c *Campaign) []experiments.Waveform { return experiments.Waveforms(c) }

// BorderMap runs a one-shot bdrmap discovery from a VP at virtual
// time t, using the world's published datasets.
func BorderMap(w *World, vp *VP, t Time) (*bdrmap.Result, error) {
	p := NewProber(w, vp)
	return bdrmap.Run(p, bdrmap.Config{
		BGP:      w.BGP,
		Rels:     w.Graph,
		RIR:      registry.NewIndex(w.RIRFile),
		IXP:      ixpdir.NewIndex(w.Directory),
		Geo:      w.GeoDB,
		RDNS:     w.RDNS,
		Siblings: vp.Siblings,
	}, t)
}

// BorderMapResult is the bdrmap output type.
type BorderMapResult = bdrmap.Result

// ValidateNeighbors scores an inferred neighbor set against ground
// truth: the discovered fraction plus missed and spurious neighbors.
func ValidateNeighbors(res *BorderMapResult, truth []ASN) (frac float64, missed, spurious []ASN) {
	return bdrmap.ValidateNeighbors(res, truth)
}

// AnalysisConfig tunes the per-link congestion analysis.
type AnalysisConfig = analysis.Config

// DefaultAnalysisConfig is the paper's operating point: 10 ms
// threshold, 30-minute minimum event duration.
func DefaultAnalysisConfig() AnalysisConfig { return analysis.DefaultConfig() }

// AnalyzeLink runs the §5.2 pipeline over one link's collected series.
func AnalyzeLink(ls analysis.LinkSeries, cfg AnalysisConfig) Verdict {
	return analysis.AnalyzeLink(ls, cfg)
}

// AnalyzeLinkSweep runs the per-link pipeline across a threshold sweep
// (Table 1), detecting level shifts once per link end and classifying
// per threshold. Verdicts are bit-identical to independent AnalyzeLink
// calls at each threshold.
func AnalyzeLinkSweep(ls analysis.LinkSeries, cfg AnalysisConfig, thresholds []float64) []Verdict {
	return analysis.AnalyzeLinkSweep(ls, cfg, thresholds)
}

// LinkSeries carries one link's near/far RTT series.
type LinkSeries = analysis.LinkSeries

// Collector streams TSLP rounds into analysis-ready series.
type Collector = analysis.Collector

// CollectorConfig sizes a Collector.
type CollectorConfig = analysis.CollectorConfig

// NewCollector builds a Collector for a TSLP session.
func NewCollector(ts *TSLP, cfg CollectorConfig) *Collector {
	return analysis.NewCollector(ts, cfg)
}

// LevelShiftEvent is one detected congestion episode.
type LevelShiftEvent = levelshift.Event

// Monitor is the online congestion watcher (the §7 recommendation
// implemented): feed it TSLP rounds and it raises onset / cleared /
// unreachable alerts as they happen.
type Monitor = monitor.Monitor

// MonitorConfig tunes the online watcher.
type MonitorConfig = monitor.Config

// Alert is one operator notification from a Monitor.
type Alert = monitor.Alert

// Alert kinds.
const (
	AlertOnset       = monitor.Onset
	AlertCleared     = monitor.Cleared
	AlertUnreachable = monitor.Unreachable
)

// NewMonitor builds an online watcher for one link.
func NewMonitor(target LinkTarget, cfg MonitorConfig) *Monitor {
	return monitor.New(target, cfg)
}

// Fleet watches every link of one vantage point online.
type Fleet = monitor.Fleet

// NewFleet builds an empty fleet of link watchers.
func NewFleet(cfg MonitorConfig) *Fleet { return monitor.NewFleet(cfg) }
