package afrixp

// One benchmark per paper table and figure (see DESIGN.md §5), plus
// ablation benches for the design choices the pipeline makes. The
// table/figure benches share one cached campaign (building it is
// BenchmarkFullCampaign's job) and measure regeneration of their
// artifact from the collected data; the campaign covers the windows of
// every figure.

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"afrixp/internal/analysis"
	"afrixp/internal/checkpoint"
	"afrixp/internal/cusum"
	"afrixp/internal/experiments"
	"afrixp/internal/levelshift"
	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

var (
	benchOnce sync.Once
	benchRes  *Campaign
)

// benchCampaign runs one shared 8-month campaign at reduced scale —
// long enough to cover every figure window (fig1 in March through
// fig3a ending late October).
func benchCampaign(b *testing.B) *Campaign {
	b.Helper()
	benchOnce.Do(func() {
		benchRes = RunCampaign(CampaignConfig{
			Seed: 1, Scale: 0.08, Days: 255,
		})
	})
	return benchRes
}

func BenchmarkFullCampaign(b *testing.B) {
	// The end-to-end cost of a one-week, all-VP campaign: world
	// construction, discovery, probing, threshold-sweep analysis.
	for i := 0; i < b.N; i++ {
		RunCampaign(CampaignConfig{Seed: uint64(i + 1), Scale: 0.08, Days: 7,
			StartOffsetDays: 14, DisableLoss: true})
	}
}

// BenchmarkFaultCampaign measures the same one-week campaign with the
// default fault plan injected — VP outages, ICMP blackouts and
// rate-limit duty cycles, link flaps. The delta over
// BenchmarkFullCampaign is the full cost of fault injection: plan
// construction, the per-step outage gate, the per-probe ICMP-silence
// schedules, and the extra barrier events at episode boundaries.
func BenchmarkFaultCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RunCampaign(CampaignConfig{Seed: uint64(i + 1), Scale: 0.08, Days: 7,
			StartOffsetDays: 14, DisableLoss: true, Faults: true})
	}
}

// BenchmarkBudgetCampaign measures the one-week campaign under the
// probe-budget scheduler at 100/50/25/10% budgets. ns/op deltas are
// the net effect of probing less (fewer TSLP rounds) plus the
// scheduler's own bill (per-step skip gate, streaming CUSUM taps,
// barrier recomputes); the probes_sent metric records the per-link
// rounds actually sent so the ledger can verify the spend reduction
// (budget=50 must send at most ~55% of budget=100's probes — see
// scripts/benchjson).
func BenchmarkBudgetCampaign(b *testing.B) {
	for _, pct := range []int{100, 50, 25, 10} {
		b.Run(fmt.Sprintf("budget=%d", pct), func(b *testing.B) {
			sent := 0
			for i := 0; i < b.N; i++ {
				res := RunCampaign(CampaignConfig{Seed: uint64(i + 1), Scale: 0.08, Days: 7,
					StartOffsetDays: 14, DisableLoss: true,
					Budget: float64(pct) / 100, BudgetSeed: 1})
				sent = 0
				for _, y := range res.Yields() {
					sent += y.Rounds
				}
			}
			if sent == 0 {
				b.Fatal("campaign sent no probe rounds")
			}
			b.ReportMetric(float64(sent), "probes_sent")
		})
	}
}

// BenchmarkAlertLatency runs the streaming observatory's detection-lag
// experiment (internal/experiments.RunStreamAlertLatency): a 7-day
// campaign over the 10× generated world per budget fraction, with the
// streaming service attached. ns/op is the experiment's cost; the
// alert_latency_p50_s / alert_latency_p95_s metrics record the
// virtual-time lag from planted congestion onset to the first
// streaming alert, which the benchjson guard sanity-checks (warn-only:
// lags must be positive and inside the campaign week, p95 ≥ p50).
func BenchmarkAlertLatency(b *testing.B) {
	for _, pct := range []int{100, 50} {
		b.Run(fmt.Sprintf("budget=%d", pct), func(b *testing.B) {
			var row experiments.StreamAlertLatency
			for i := 0; i < b.N; i++ {
				rows := experiments.RunStreamAlertLatency([]float64{float64(pct) / 100})
				row = rows[0]
			}
			if row.Truth == 0 || row.Alerted == 0 {
				b.Fatal("no planted congestion alerted; the latency metrics are vacuous")
			}
			b.ReportMetric(float64(row.Alerted)/float64(row.Truth), "alerted_fraction")
			b.ReportMetric(time.Duration(row.P50).Seconds(), "alert_latency_p50_s")
			b.ReportMetric(time.Duration(row.P95).Seconds(), "alert_latency_p95_s")
		})
	}
}

// BenchmarkCheckpoint measures the barrier snapshot write path —
// gob-encoding the full measurement state (collector grids, loss
// batches, CUSUM streams, rate ladders, arena bytes) plus the CRC
// framing and the atomic tmp+rename — on a snapshot taken from a real
// one-week faulted, budgeted campaign. ns/op is the per-barrier stall
// a checkpointing campaign pays; snapshot_bytes is the on-disk size
// the cadence multiplies.
func BenchmarkCheckpoint(b *testing.B) {
	dir := b.TempDir()
	RunCampaign(CampaignConfig{Seed: 1, Scale: 0.08, Days: 7,
		StartOffsetDays: 14, Faults: true, Budget: 0.5, BudgetSeed: 1,
		CheckpointDir: dir, CheckpointEvery: 24 * time.Hour})
	snap, err := checkpoint.LoadLatest(dir, nil)
	if err != nil || snap == nil {
		b.Fatalf("campaign left no checkpoint: %v", err)
	}
	out := b.TempDir()
	var bytes int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bytes, err = checkpoint.Write(out, snap)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if bytes == 0 {
		b.Fatal("empty snapshot payload")
	}
	b.ReportMetric(float64(bytes), "snapshot_bytes")
}

// BenchmarkTelemetryCampaign is BenchmarkFullCampaign with a telemetry
// root attached; the delta between the two is the entire observability
// bill — per-probe plain counting, barrier-time republication into the
// atomic mirrors, span/event recording, worker busy accounting. The
// design target is within 5% of BenchmarkFullCampaign.
func BenchmarkTelemetryCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RunCampaign(CampaignConfig{Seed: uint64(i + 1), Scale: 0.08, Days: 7,
			StartOffsetDays: 14, DisableLoss: true, Telemetry: NewTelemetry()})
	}
}

// BenchmarkCampaignParallel measures the same one-week campaign as
// BenchmarkFullCampaign under the sequential engine (workers=1) and the
// parallel one (workers=GOMAXPROCS); the two sub-benchmarks produce
// bit-identical results (TestParallelCampaignBitIdentical), so the
// ratio is pure engine speedup. On a single-core runner the ratio is
// ~1 by construction.
func BenchmarkCampaignParallel(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RunCampaign(CampaignConfig{Seed: uint64(i + 1), Scale: 0.08, Days: 7,
					StartOffsetDays: 14, DisableLoss: true, Workers: workers})
			}
		})
	}
}

// BenchmarkProbeStepBatch isolates the batch planner's barrier
// amortization: the same one-week parallel campaign dispatched one
// probing step per worker hand-off (batch=1, the pre-batching engine's
// cadence) versus larger batches up to the default. Results are
// bit-identical at every batch size (TestBatchSizeSweepBitIdentical),
// so the ratio is pure scheduling overhead — channel hand-offs and
// world-clock barriers per probing step.
func BenchmarkProbeStepBatch(b *testing.B) {
	for _, batch := range []int{1, 32, 1024} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				RunCampaign(CampaignConfig{Seed: uint64(i + 1), Scale: 0.08, Days: 7,
					StartOffsetDays: 14, DisableLoss: true,
					Workers: runtime.GOMAXPROCS(0), BatchSteps: batch})
			}
		})
	}
}

// BenchmarkAnalysisFanout measures the per-link threshold-sweep
// analysis phase alone (rank-CUSUM bootstrap dominated) re-derived from
// one shared collected campaign, sequentially vs fanned out.
func BenchmarkAnalysisFanout(b *testing.B) {
	res := benchCampaign(b)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res.Reanalyze(workers)
			}
		})
	}
}

// BenchmarkAnalysisSweep isolates the detect-once/threshold-many win on
// the same collected links: "sweep" runs one AnalyzeLinkSweep per link
// (one Sweeper, the campaign worker pattern) while "independent" pays a
// full detection per threshold — the pre-sweep cost model. Both cover
// the Table-1 thresholds; the ratio is the pure sweep speedup with the
// fan-out machinery factored out.
func BenchmarkAnalysisSweep(b *testing.B) {
	res := benchCampaign(b)
	var series []analysis.LinkSeries
	for _, vr := range res.VPs {
		for _, lr := range vr.SortedLinks() {
			series = append(series, lr.Collector.Series())
		}
	}
	thresholds := res.Cfg.Thresholds
	cfg := analysis.DefaultConfig()
	b.Run("sweep", func(b *testing.B) {
		b.ReportAllocs()
		sw := analysis.NewSweeper()
		for i := 0; i < b.N; i++ {
			for _, ls := range series {
				if got := sw.AnalyzeLinkSweep(ls, cfg, thresholds); len(got) != len(thresholds) {
					b.Fatalf("%d verdicts for %d thresholds", len(got), len(thresholds))
				}
			}
		}
	})
	b.Run("independent", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, ls := range series {
				for _, thr := range thresholds {
					one := cfg
					one.ThresholdMs = thr
					if v := analysis.AnalyzeLink(ls, one); v.Target != ls.Target {
						b.Fatal("verdict target mismatch")
					}
				}
			}
		}
	})
}

// BenchmarkChunkCompression measures the columnar store on the shared
// campaign's collected series: ns/op is one full decode sweep over
// every chunk-backed link series (the block-streaming read path the
// analysis pays), and the compression_x metric is the raw-grid bytes
// (8 B/slot) over the XOR-encoded arena bytes — the resident-memory
// ratio the ledger records for the ROADMAP's 10^5–10^6-link target.
func BenchmarkChunkCompression(b *testing.B) {
	res := benchCampaign(b)
	var series []*timeseries.Series
	raw, encoded := 0, 0
	for _, vr := range res.VPs {
		for _, lr := range vr.SortedLinks() {
			ls := lr.Collector.Series()
			for _, s := range []*timeseries.Series{ls.Near, ls.Far} {
				if !s.Chunked() {
					b.Fatal("collector series not chunk-backed; compression bench is vacuous")
				}
				series = append(series, s)
				raw += s.Chunk().RawSize()
				encoded += s.Chunk().EncodedSize()
			}
		}
	}
	if len(series) == 0 || encoded == 0 {
		b.Fatal("no chunked series collected")
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		for _, s := range series {
			s.Each(func(_ int, vals []float64) {
				for _, v := range vals {
					if !timeseries.IsMissing(v) {
						sink++
					}
				}
			})
		}
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("decode sweep saw no present samples")
	}
	b.ReportMetric(float64(raw)/float64(encoded), "compression_x")
}

func BenchmarkTable1Sensitivity(b *testing.B) {
	res := benchCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := Table1(res)
		if len(rows) != 7 {
			b.Fatalf("rows = %d", len(rows))
		}
		Table1Report(res).Render(io.Discard)
	}
}

func BenchmarkTable2Evolution(b *testing.B) {
	res := benchCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(Table2(res)) == 0 {
			b.Fatal("no rows")
		}
		Table2Report(res).Render(io.Discard)
	}
}

// benchFigure measures extraction + rendering of one figure.
func benchFigure(b *testing.B, id string) {
	res := benchCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found := false
		for _, fig := range Figures(res) {
			if fig.ID != id {
				continue
			}
			found = true
			if err := fig.Render(io.Discard, 100, 14); err != nil {
				b.Fatal(err)
			}
			if err := fig.WriteCSV(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
		if !found {
			b.Fatalf("figure %s not covered by the bench campaign", id)
		}
	}
}

func BenchmarkFigure1GhanatelPhase1(b *testing.B)  { benchFigure(b, "fig1") }
func BenchmarkFigure2aGhanatelPhase2(b *testing.B) { benchFigure(b, "fig2a") }
func BenchmarkFigure2bGhanatelLoss(b *testing.B)   { benchFigure(b, "fig2b") }
func BenchmarkFigure3aKnetRTT(b *testing.B)        { benchFigure(b, "fig3a") }
func BenchmarkFigure3bKnetLoss(b *testing.B)       { benchFigure(b, "fig3b") }
func BenchmarkFigure4aNetpagePhase1(b *testing.B)  { benchFigure(b, "fig4a") }
func BenchmarkFigure4bNetpagePhase2(b *testing.B)  { benchFigure(b, "fig4b") }

func BenchmarkHeadlineCongestedFraction(b *testing.B) {
	res := benchCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, frac := Headline(res); frac < 0 {
			b.Fatal("negative fraction")
		}
	}
}

func BenchmarkBdrmapAccuracy(b *testing.B) {
	// A fresh single-VP border-mapping run per iteration — the §4
	// validation workload.
	w := NewWorld(WorldOptions{Seed: 2, Scale: 0.08})
	vp, _ := w.VPByID("VP1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := BorderMap(w, vp, w.Now())
		if err != nil {
			b.Fatal(err)
		}
		if frac, _, _ := ValidateNeighbors(res, w.TruthNeighbors(vp)); frac < 0.5 {
			b.Fatalf("coverage %v", frac)
		}
	}
}

func BenchmarkWaveformStats(b *testing.B) {
	res := benchCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(Waveforms(res)) == 0 {
			b.Fatal("no waveforms")
		}
	}
}

// ---------------------------------------------------------------
// Ablations: the design choices DESIGN.md calls out.
// ---------------------------------------------------------------

// ablationSeries is a 30-day diurnal congestion series with noise and
// short blips — the input on which the ablations disagree.
func ablationSeries() *timeseries.Series {
	rng := rand.New(rand.NewSource(9))
	s := timeseries.NewRegular(0, 5*time.Minute, 30*288)
	for i := 0; i < s.Len(); i++ {
		h := s.TimeAt(i).HourOfDay()
		v := 2.0
		if h >= 10 && h < 16 {
			v += 22
		}
		if i%288 == 40 { // daily 5-minute blip
			v += 60
		}
		s.Set(i, v+math.Abs(0.6*rng.NormFloat64()))
	}
	return s
}

// BenchmarkAblationMinDuration compares detection with and without
// the paper's 30-minute minimum event duration. Without it, the daily
// blip inflates the event count.
func BenchmarkAblationMinDuration(b *testing.B) {
	s := ablationSeries()
	with := levelshift.DefaultConfig()
	without := levelshift.DefaultConfig()
	without.MinDuration = 0
	without.AggregateTo = 0 // native resolution keeps the blips visible
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rw := levelshift.Analyze(s, with)
		ro := levelshift.Analyze(s, without)
		if len(ro.Events) < len(rw.Events) {
			b.Fatalf("ablation lost events: %d < %d", len(ro.Events), len(rw.Events))
		}
	}
}

// BenchmarkAblationSanitize compares Δt_UD with and without level
// shift sanitization — the paper sanitizes before computing GIXA–KNET
// durations.
func BenchmarkAblationSanitize(b *testing.B) {
	s := ablationSeries()
	cfg := levelshift.DefaultConfig()
	res := levelshift.Analyze(s, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := levelshift.Result{Events: res.Events}
		san := levelshift.Result{Events: levelshift.Sanitize(res.Events, 90*time.Minute, cfg.MinDuration)}
		if san.MeanDuration() < raw.MeanDuration() {
			b.Fatal("sanitization must merge, not shrink, events")
		}
	}
}

// BenchmarkAblationRankCUSUM compares the rank-based detector against
// raw-value CUSUM on an outlier-ridden series: the rank variant is
// the paper's choice because ICMP stragglers poison raw means.
func BenchmarkAblationRankCUSUM(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 600)
	for i := range xs {
		v := 5.0
		if i >= 300 {
			v = 21
		}
		if i%41 == 0 {
			v = 800 // straggler
		}
		xs[i] = v + rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranked := cusum.Detect(xs, cusum.Config{Seed: 1, MinMagnitude: 8})
		if len(ranked) == 0 {
			b.Fatal("rank CUSUM missed the shift")
		}
		_ = cusum.DetectRaw(xs, cusum.Config{Seed: 1, MinMagnitude: 8})
	}
}

// BenchmarkAblationNearEndCheck quantifies the near-end-flat
// requirement: without it, upstream congestion (shifting both ends)
// would be misattributed to the probed link.
func BenchmarkAblationNearEndCheck(b *testing.B) {
	res := benchCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		withCheck, withoutCheck := 0, 0
		for _, vr := range res.VPs {
			for _, lr := range vr.SortedLinks() {
				v, ok := lr.Verdicts[10]
				if !ok {
					continue
				}
				if v.Congested {
					withCheck++
				}
				if v.Flagged && v.Diurnal.Diurnal && v.Symmetric {
					withoutCheck++ // near-end requirement dropped
				}
			}
		}
		if withoutCheck < withCheck {
			b.Fatal("dropping a filter cannot reduce detections")
		}
	}
}

// BenchmarkScaleCampaign measures the sharded engine across world
// scales: a one-day campaign on the authored paper world (scale=1)
// and on 10×/100× generated worlds (4 shards), reporting probing
// throughput (link_rounds_per_sec), resident series memory per probed
// link (bytes_per_link — scripts/benchjson warns when a scale>1 row
// exceeds the scale=1 figure, the sharded memory bound), and the
// process RSS high-water mark (peak_rss_mb; cumulative across the
// process, so within one run it is monotone in scale order). The 100×
// point probes a deterministic 48-VP prefix to keep iterations
// tractable; the world-size columns still describe the full world.
func BenchmarkScaleCampaign(b *testing.B) {
	for _, scale := range []float64{1, 10, 100} {
		b.Run(fmt.Sprintf("scale=%g", scale), func(b *testing.B) {
			var p experiments.ScalePoint
			for i := 0; i < b.N; i++ {
				pts := experiments.RunScaleSweep(experiments.ScaleSweepConfig{
					Scales: []float64{scale}, MaxVPs: 48,
				})
				p = pts[0]
			}
			if p.ProbedLinks == 0 {
				b.Fatal("scale point probed no links")
			}
			b.ReportMetric(p.LinkRoundsPerSec, "link_rounds_per_sec")
			b.ReportMetric(p.BytesPerLink, "bytes_per_link")
			b.ReportMetric(p.PeakRSSMB, "peak_rss_mb")
		})
	}
}

// BenchmarkTSLPSamplingThroughput measures raw per-round probing cost
// — the number that bounds full-year campaign time.
func BenchmarkTSLPSamplingThroughput(b *testing.B) {
	w := NewWorld(WorldOptions{Seed: 3, Scale: 0.08})
	vp, _ := w.VPByID("VP4")
	p := NewProber(w, vp)
	ts, err := p.NewTSLP(vp.CaseLinks["QCELL-NETPAGE"])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Round(simclock.Time(int64(i%100000) * int64(5*time.Minute)))
	}
}
