// Command observatory runs the year-long measurement campaign the way
// the paper's infrastructure did — continuous TSLP probing from all
// six VPs with warts-format measurement archives — and writes reports,
// figure CSVs, and raw measurement files into an output directory.
//
//	observatory -out ./obs-run -days 90 -scale 0.25
//
// -scale ≤ 1 scales the authored paper world's populations (existing
// invocations are unchanged); -scale > 1 generates a continent-scale
// world (internal/worldgen) at that multiple of the paper's size,
// seeded by -gen-seed. -shards bounds per-shard series memory with
// one shared compression arena per shard; results are bit-identical
// for any -shards / -workers / -batch.
//
// -budget F (F > 0) installs the probe-budget scheduler so the
// campaign sends at most F of the full-rate probes (adaptive per-link
// rates; results bit-identical per (-budget, -budget-seed) for any
// -workers / -batch); the report gains a probe-spend line. F of 1 (or
// above, clamped) runs the scheduler at full spend, probe-count parity
// with an unscheduled run.
//
// -checkpoint-dir DIR snapshots the campaign's measurement state into
// DIR every -checkpoint-every of virtual time at batch barriers;
// -resume continues from the newest valid checkpoint there,
// bit-identical to an uninterrupted run.
//
// A long run can be watched live: -metrics-addr serves the campaign
// telemetry snapshot at /metrics (and expvar at /debug/vars) while
// probing progresses; -metrics writes the final snapshot as JSON and
// the report gains a telemetry section. -metrics-linger keeps the
// endpoint up after the run so scrapers can collect the final state
// (the observatory heartbeats its final barrier on /stream while
// lingering).
// The same port carries the streaming observatory's live API (unless
// -no-live): GET /links is the paged per-link status table, GET
// /links/{id} the detail view, GET /alerts the since-cursor alert log
// (?wait=1 long-polls), and GET /stream an SSE feed of barrier
// updates — each alert a timestamped clear → suspected → congested
// transition from the online level-shift detectors, raised as virtual
// time advances rather than at campaign end. Attaching the service
// never changes campaign results (DESIGN.md §16).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"afrixp"
	"afrixp/internal/netaddr"
	"afrixp/internal/profiling"
	"afrixp/internal/report"
	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
	"afrixp/internal/warts"
)

// main delegates to run so that deferred flushes — CPU/heap profiles,
// the telemetry snapshot, the lingering metrics server — execute on
// error paths too; the old fatal()/os.Exit pattern skipped them.
func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out           = flag.String("out", "observatory-out", "output directory")
		days          = flag.Int("days", 0, "campaign length in days (0 = full paper period)")
		scale         = flag.Float64("scale", 1.0, "world scale: ≤1 scales the authored paper world's populations; >1 generates a continent-scale world (see -gen-seed)")
		genSeed       = flag.Uint64("gen-seed", 0, "continent-scale generator seed (only with -scale > 1; 0 = default)")
		shards        = flag.Int("shards", 0, "partition VPs into this many memory shards, one shared series arena each (0/1 = private per-VP arenas; results are identical for any value)")
		seed          = flag.Uint64("seed", 0, "world seed")
		noLoss        = flag.Bool("no-loss", false, "skip loss campaigns")
		workers       = flag.Int("workers", runtime.GOMAXPROCS(0), "probing/analysis worker goroutines (results are identical for any value)")
		batch         = flag.Int("batch", 0, "max probing steps per worker dispatch (0 = default 1024; results are identical for any value)")
		doFaults      = flag.Bool("faults", false, "inject the deterministic fault plan and report per-VP uptime/sample yield")
		faultSeed     = flag.Uint64("fault-seed", 0, "extra seed for the fault plan (only with -faults)")
		budgetFrac    = flag.Float64("budget", 0, "probe budget as a fraction of full rate (0 = no scheduler; ≥1 = scheduler at full spend; results identical per (budget, budget-seed) for any -workers/-batch)")
		budgetSeed    = flag.Uint64("budget-seed", 0, "extra seed for the probe-budget schedule (only with -budget)")
		cpuProf       = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf       = flag.String("memprofile", "", "write a heap profile to this file at exit")
		metricsOut    = flag.String("metrics", "", "write a campaign telemetry snapshot (JSON) to this file at exit")
		metricsAddr   = flag.String("metrics-addr", "", "serve live telemetry at http://ADDR/metrics during the run")
		metricsLinger = flag.Duration("metrics-linger", 0, "keep the -metrics-addr endpoint up this long after the run completes")
		noLive        = flag.Bool("no-live", false, "do not mount the streaming observatory API (/links, /alerts, /stream) on -metrics-addr")
		ckptDir       = flag.String("checkpoint-dir", "", "snapshot the campaign's measurement state into this directory at batch barriers")
		ckptEvery     = flag.Duration("checkpoint-every", 0, "virtual-time cadence between checkpoints (0 = default 24h; only with -checkpoint-dir)")
		doResume      = flag.Bool("resume", false, "resume from the newest valid checkpoint in -checkpoint-dir (bit-identical to an uninterrupted run)")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	var tele *afrixp.Telemetry
	var live *afrixp.Observatory
	if *metricsOut != "" || *metricsAddr != "" {
		tele = afrixp.NewTelemetry()
		if *metricsOut != "" {
			defer func() {
				if err := tele.WriteJSONFile(*metricsOut); err != nil {
					fmt.Fprintln(os.Stderr, err)
				} else {
					fmt.Fprintf(os.Stderr, "telemetry snapshot written to %s\n", *metricsOut)
				}
			}()
		}
		if *metricsAddr != "" {
			var mounts []func(*http.ServeMux)
			if !*noLive {
				live = afrixp.NewObservatory(afrixp.ObservatoryConfig{})
				mounts = append(mounts, live.Mount)
			}
			srv, err := tele.Serve(*metricsAddr, mounts...)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "telemetry: live at http://%s/metrics\n", srv.Addr())
			if live != nil {
				fmt.Fprintf(os.Stderr, "observatory: live at http://%s/links /alerts /stream\n", srv.Addr())
			}
			if *metricsLinger > 0 {
				// Linger before the deferred Close so a scraper (or the
				// CI smoke test) can read the post-run state. While
				// lingering, republish the observatory's final barrier
				// once a second: ObserveBarrier at an unchanged barrier
				// feeds no slots and raises no alerts, but it does emit
				// an SSE heartbeat, so a /stream subscriber that
				// connects after the campaign finished still sees
				// barrier events instead of a silent socket.
				defer func() {
					fmt.Fprintf(os.Stderr, "telemetry: lingering %v on http://%s/metrics\n",
						*metricsLinger, srv.Addr())
					deadline := time.Now().Add(*metricsLinger)
					for time.Now().Before(deadline) {
						time.Sleep(time.Second)
						if live != nil {
							live.ObserveBarrier(live.Barrier())
						}
					}
				}()
			}
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fmt.Errorf("mkdir: %w", err)
	}
	start := time.Now()
	c := afrixp.RunCampaign(afrixp.CampaignConfig{
		Seed: *seed, Scale: *scale, GenSeed: *genSeed, Days: *days,
		DisableLoss: *noLoss, Workers: *workers, BatchSteps: *batch, Shards: *shards,
		Faults: *doFaults, FaultSeed: *faultSeed,
		Budget: *budgetFrac, BudgetSeed: *budgetSeed,
		CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery, Resume: *doResume,
		Progress: os.Stderr, Telemetry: tele, Observatory: live,
	})
	fmt.Fprintf(os.Stderr, "campaign finished in %v\n", time.Since(start).Round(time.Second))

	// Reports.
	reportPath := filepath.Join(*out, "report.txt")
	rf, err := os.Create(reportPath)
	if err != nil {
		return fmt.Errorf("create report: %w", err)
	}
	defer rf.Close()
	afrixp.Table1Report(c).Render(rf)
	fmt.Fprintln(rf)
	afrixp.Table2Report(c).Render(rf)
	fmt.Fprintln(rf)
	rows, frac := afrixp.Headline(c)
	for _, r := range rows {
		fmt.Fprintf(rf, "%s: %d/%d links congested (%.1f%%)\n",
			r.VP, r.Congested, r.Links, 100*r.Fraction)
	}
	fmt.Fprintf(rf, "overall congested fraction: %.1f%% (paper: 2.2%%)\n", 100*frac)
	fmt.Fprintf(rf, "bdrmap mean coverage: %.1f%% (paper: 96.2%%)\n",
		100*afrixp.BdrmapAccuracy(c))
	if *doFaults {
		fmt.Fprintf(rf, "\nfault plan (%d episodes): per-VP uptime and sample yield\n",
			len(c.Faults.Faults))
		for _, y := range c.Yields() {
			fmt.Fprintf(rf, "%s: uptime %.1f%%, sample yield %.1f%% (%d rounds, %d missed, %d skipped, %d links)\n",
				y.VP, 100*y.Uptime, 100*y.SampleYield, y.Rounds, y.Missed, y.Skipped, y.Links)
		}
	}
	if *budgetFrac > 0 {
		var rounds, skipped int
		for _, y := range c.Yields() {
			rounds += y.Rounds
			skipped += y.Skipped
		}
		fmt.Fprintf(rf, "probe budget %.0f%%: %d rounds sent, %d skipped (%.1f%% of schedule)\n",
			100**budgetFrac, rounds, skipped,
			100*float64(rounds)/float64(rounds+skipped))
	}
	if live != nil {
		fmt.Fprintf(rf, "\nstreaming observatory: %d links watched, %d alerts raised through %s\n",
			live.NumLinks(), live.TotalAlerts(), live.Barrier())
	}
	if tele != nil {
		fmt.Fprintln(rf)
		tele.WriteReport(rf)
	}

	// Figures: ASCII into the report dir, CSVs alongside.
	for _, fig := range afrixp.Figures(c) {
		csvPath := filepath.Join(*out, fig.ID+".csv")
		cf, err := os.Create(csvPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", csvPath, err)
		}
		if err := fig.WriteCSV(cf); err != nil {
			cf.Close()
			return fmt.Errorf("write %s: %w", csvPath, err)
		}
		cf.Close()
		pf, err := os.Create(filepath.Join(*out, fig.ID+".txt"))
		if err != nil {
			return fmt.Errorf("create plot: %w", err)
		}
		fig.Render(pf, 120, 16)
		pf.Close()
		sf, err := os.Create(filepath.Join(*out, fig.ID+".svg"))
		if err != nil {
			return fmt.Errorf("create svg: %w", err)
		}
		if err := fig.WriteSVG(sf, 960, 380); err != nil {
			sf.Close()
			return fmt.Errorf("write svg: %w", err)
		}
		sf.Close()
	}

	// Raw measurement archive: re-emit each VP's collected series as
	// warts records (the campaign keeps aggregated series; the
	// archive carries one record per retained sample).
	archive := filepath.Join(*out, "measurements.warts")
	af, err := os.Create(archive)
	if err != nil {
		return fmt.Errorf("create archive: %w", err)
	}
	defer af.Close()
	wr, err := warts.NewWriter(af)
	if err != nil {
		return fmt.Errorf("warts: %w", err)
	}
	records := 0
	for _, vr := range c.VPs {
		for _, lr := range vr.SortedLinks() {
			ls := lr.Collector.Series()
			// Each streams block-wise through the chunked backing
			// (collector series are XOR-compressed by default) and
			// degrades to one whole-slice visit on flat series.
			emit := func(s *timeseries.Series, at func(int) simclock.Time,
				responder netaddr.Addr, respType uint8) error {
				var werr error
				s.Each(func(base int, vals []float64) {
					if werr != nil {
						return
					}
					for i, v := range vals {
						rec := &warts.Record{
							Type: warts.TypeTSLP, VP: vr.VP.Monitor,
							At: at(base + i), Target: lr.Target.Far,
							Responder: responder, RespType: respType,
						}
						if v != v { // NaN: lost/not taken
							rec.Lost = true
						} else {
							rec.RTT = time.Duration(v * float64(time.Millisecond))
						}
						if err := wr.Write(rec); err != nil {
							werr = fmt.Errorf("warts write: %w", err)
							return
						}
						records++
					}
				})
				return werr
			}
			if err := emit(ls.Near, ls.Near.TimeAt, lr.Target.Near, 11 /* time exceeded */); err != nil {
				return err
			}
			if err := emit(ls.Far, ls.Far.TimeAt, lr.Target.Far, 0 /* echo reply */); err != nil {
				return err
			}
		}
	}
	if err := wr.Flush(); err != nil {
		return fmt.Errorf("warts flush: %w", err)
	}

	// Summary table to stdout.
	t := &report.Table{Title: "observatory run complete",
		Header: []string{"artifact", "path"}}
	t.AddRow("report", reportPath)
	t.AddRow("warts archive", fmt.Sprintf("%s (%d records)", archive, records))
	t.AddRow("figure CSVs", filepath.Join(*out, "fig*.csv"))
	t.Render(os.Stdout)
	return nil
}
