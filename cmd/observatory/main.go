// Command observatory runs the year-long measurement campaign the way
// the paper's infrastructure did — continuous TSLP probing from all
// six VPs with warts-format measurement archives — and writes reports,
// figure CSVs, and raw measurement files into an output directory.
//
//	observatory -out ./obs-run -days 90 -scale 0.25
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"afrixp"
	"afrixp/internal/netaddr"
	"afrixp/internal/profiling"
	"afrixp/internal/report"
	"afrixp/internal/simclock"
	"afrixp/internal/warts"
)

func main() {
	var (
		out       = flag.String("out", "observatory-out", "output directory")
		days      = flag.Int("days", 0, "campaign length in days (0 = full paper period)")
		scale     = flag.Float64("scale", 1.0, "world scale")
		seed      = flag.Uint64("seed", 0, "world seed")
		noLoss    = flag.Bool("no-loss", false, "skip loss campaigns")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "probing/analysis worker goroutines (results are identical for any value)")
		batch     = flag.Int("batch", 0, "max probing steps per worker dispatch (0 = default 1024; results are identical for any value)")
		doFaults  = flag.Bool("faults", false, "inject the deterministic fault plan and report per-VP uptime/sample yield")
		faultSeed = flag.Uint64("fault-seed", 0, "extra seed for the fault plan (only with -faults)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal("mkdir: %v", err)
	}
	start := time.Now()
	c := afrixp.RunCampaign(afrixp.CampaignConfig{
		Seed: *seed, Scale: *scale, Days: *days,
		DisableLoss: *noLoss, Workers: *workers, BatchSteps: *batch,
		Faults: *doFaults, FaultSeed: *faultSeed, Progress: os.Stderr,
	})
	fmt.Fprintf(os.Stderr, "campaign finished in %v\n", time.Since(start).Round(time.Second))

	// Reports.
	reportPath := filepath.Join(*out, "report.txt")
	rf, err := os.Create(reportPath)
	if err != nil {
		fatal("create report: %v", err)
	}
	afrixp.Table1Report(c).Render(rf)
	fmt.Fprintln(rf)
	afrixp.Table2Report(c).Render(rf)
	fmt.Fprintln(rf)
	rows, frac := afrixp.Headline(c)
	for _, r := range rows {
		fmt.Fprintf(rf, "%s: %d/%d links congested (%.1f%%)\n",
			r.VP, r.Congested, r.Links, 100*r.Fraction)
	}
	fmt.Fprintf(rf, "overall congested fraction: %.1f%% (paper: 2.2%%)\n", 100*frac)
	fmt.Fprintf(rf, "bdrmap mean coverage: %.1f%% (paper: 96.2%%)\n",
		100*afrixp.BdrmapAccuracy(c))
	if *doFaults {
		fmt.Fprintf(rf, "\nfault plan (%d episodes): per-VP uptime and sample yield\n",
			len(c.Faults.Faults))
		for _, y := range c.Yields() {
			fmt.Fprintf(rf, "%s: uptime %.1f%%, sample yield %.1f%% (%d rounds, %d missed, %d links)\n",
				y.VP, 100*y.Uptime, 100*y.SampleYield, y.Rounds, y.Missed, y.Links)
		}
	}
	rf.Close()

	// Figures: ASCII into the report dir, CSVs alongside.
	for _, fig := range afrixp.Figures(c) {
		csvPath := filepath.Join(*out, fig.ID+".csv")
		cf, err := os.Create(csvPath)
		if err != nil {
			fatal("create %s: %v", csvPath, err)
		}
		if err := fig.WriteCSV(cf); err != nil {
			fatal("write %s: %v", csvPath, err)
		}
		cf.Close()
		pf, err := os.Create(filepath.Join(*out, fig.ID+".txt"))
		if err != nil {
			fatal("create plot: %v", err)
		}
		fig.Render(pf, 120, 16)
		pf.Close()
		sf, err := os.Create(filepath.Join(*out, fig.ID+".svg"))
		if err != nil {
			fatal("create svg: %v", err)
		}
		if err := fig.WriteSVG(sf, 960, 380); err != nil {
			fatal("write svg: %v", err)
		}
		sf.Close()
	}

	// Raw measurement archive: re-emit each VP's collected series as
	// warts records (the campaign keeps aggregated series; the
	// archive carries one record per retained sample).
	archive := filepath.Join(*out, "measurements.warts")
	af, err := os.Create(archive)
	if err != nil {
		fatal("create archive: %v", err)
	}
	wr, err := warts.NewWriter(af)
	if err != nil {
		fatal("warts: %v", err)
	}
	records := 0
	for _, vr := range c.VPs {
		for _, lr := range vr.SortedLinks() {
			ls := lr.Collector.Series()
			emit := func(s []float64, at func(int) simclock.Time,
				responder netaddr.Addr, respType uint8) {
				for i, v := range s {
					rec := &warts.Record{
						Type: warts.TypeTSLP, VP: vr.VP.Monitor,
						At: at(i), Target: lr.Target.Far,
						Responder: responder, RespType: respType,
					}
					if v != v { // NaN: lost/not taken
						rec.Lost = true
					} else {
						rec.RTT = time.Duration(v * float64(time.Millisecond))
					}
					if err := wr.Write(rec); err != nil {
						fatal("warts write: %v", err)
					}
					records++
				}
			}
			emit(ls.Near.Values, ls.Near.TimeAt, lr.Target.Near, 11 /* time exceeded */)
			emit(ls.Far.Values, ls.Far.TimeAt, lr.Target.Far, 0 /* echo reply */)
		}
	}
	if err := wr.Flush(); err != nil {
		fatal("warts flush: %v", err)
	}
	af.Close()

	// Summary table to stdout.
	t := &report.Table{Title: "observatory run complete",
		Header: []string{"artifact", "path"}}
	t.AddRow("report", reportPath)
	t.AddRow("warts archive", fmt.Sprintf("%s (%d records)", archive, records))
	t.AddRow("figure CSVs", filepath.Join(*out, "fig*.csv"))
	t.Render(os.Stdout)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
