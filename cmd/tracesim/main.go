// Command tracesim runs traceroute/ping measurements from one of the
// paper's vantage points against the simulated world — the
// scamper-on-an-Ark-monitor experience in miniature.
//
//	tracesim -vp VP1 -target 196.60.0.12
//	tracesim -vp VP4 -case QCELL-NETPAGE -at 2016-03-09T13:30
//	tracesim -vp VP1 -rr -target 196.60.0.12
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"afrixp"
	"afrixp/internal/netaddr"
	"afrixp/internal/simclock"
)

func main() {
	var (
		vpID    = flag.String("vp", "VP1", "vantage point (VP1..VP6)")
		target  = flag.String("target", "", "destination IPv4 address")
		caseLnk = flag.String("case", "", "probe a named case link's far end (e.g. GIXA-GHANATEL)")
		at      = flag.String("at", "2016-03-09T12:00", "virtual time (2006-01-02T15:04)")
		rr      = flag.Bool("rr", false, "send a record-route probe instead of a traceroute")
		scale   = flag.Float64("scale", 0.2, "world scale")
		seed    = flag.Uint64("seed", 0, "world seed")
	)
	flag.Parse()

	when, err := time.Parse("2006-01-02T15:04", *at)
	if err != nil {
		fatal("bad -at: %v", err)
	}
	t := simclock.At(when.UTC())

	w := afrixp.NewWorld(afrixp.WorldOptions{Seed: *seed, Scale: *scale})
	w.AdvanceTo(t)
	vp, ok := w.VPByID(*vpID)
	if !ok {
		fatal("unknown VP %q", *vpID)
	}

	var dst netaddr.Addr
	switch {
	case *caseLnk != "":
		lt, ok := vp.CaseLinks[*caseLnk]
		if !ok {
			fatal("%s has no case link %q (have %v)", *vpID, *caseLnk, keys(vp.CaseLinks))
		}
		dst = lt.Far
	case *target != "":
		dst, err = netaddr.ParseAddr(*target)
		if err != nil {
			fatal("bad -target: %v", err)
		}
	default:
		fatal("need -target or -case")
	}

	p := afrixp.NewProber(w, vp)
	if *rr {
		res, err := p.RRPing(dst, t)
		if err != nil {
			fatal("rr ping: %v", err)
		}
		if res.Lost {
			fmt.Println("record-route probe lost")
			return
		}
		fmt.Printf("record-route to %v: rtt %v, %d stamps (full=%v)\n",
			dst, res.RTT.Round(time.Microsecond), len(res.Recorded), res.Full)
		for i, a := range res.Recorded {
			fmt.Printf("  %2d  %v\n", i+1, a)
		}
		return
	}

	fmt.Printf("traceroute from %s (%s) to %v at %v\n", vp.ID, vp.Monitor, dst, t)
	hops, err := p.Traceroute(dst, 24, t)
	if err != nil {
		fatal("traceroute: %v", err)
	}
	for _, h := range hops {
		if h.Lost {
			fmt.Printf("  %2d  *\n", h.TTL)
			continue
		}
		mark := ""
		if h.Reached {
			mark = "  (destination)"
		}
		fmt.Printf("  %2d  %-16v %9.3f ms%s\n", h.TTL, h.Responder,
			float64(h.RTT)/1e6, mark)
	}
}

func keys(m map[string]afrixp.LinkTarget) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
