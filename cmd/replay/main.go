// Command replay re-runs the congestion analysis offline over a
// warts-format measurement archive (as written by cmd/observatory or
// any prober with warts output) — the workflow of an analyst who has
// the Ark uploads but not the network.
//
//	observatory -out ./run -days 60 -scale 0.2
//	replay -warts ./run/measurements.warts -days 60
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"afrixp/internal/analysis"
	"afrixp/internal/report"
	"afrixp/internal/simclock"
	"afrixp/internal/warts"
)

func main() {
	var (
		path     = flag.String("warts", "", "warts archive to analyze")
		days     = flag.Int("days", 0, "campaign length in days (0 = the paper's full period)")
		startOff = flag.Int("start-offset", 0, "days after 2016-02-22 the campaign started")
		thr      = flag.Float64("threshold", 10, "level-shift threshold (ms)")
		flat     = flag.Bool("flat", false, "keep reconstructed series as flat slices instead of XOR-compressed chunks")
	)
	flag.Parse()
	if *path == "" {
		fatal("need -warts")
	}
	f, err := os.Open(*path)
	if err != nil {
		fatal("open: %v", err)
	}
	defer f.Close()
	rd, err := warts.NewReader(f)
	if err != nil {
		fatal("reading archive: %v", err)
	}

	campaign := simclock.Interval{
		Start: simclock.Time(0).Add(time.Duration(*startOff) * 24 * time.Hour),
		End:   simclock.LatencyEnd,
	}
	if *days > 0 {
		campaign.End = campaign.Start.Add(time.Duration(*days) * 24 * time.Hour)
	}

	// Chunked by default: a month-scale archive's reconstructed grids
	// stay XOR-compressed while the analysis streams them block-wise.
	// -flat keeps the old uncompressed layout (results are identical).
	fromWarts := analysis.FromWartsChunked
	if *flat {
		fromWarts = analysis.FromWarts
	}
	byVP, err := fromWarts(rd, campaign, 5*time.Minute)
	if err != nil {
		fatal("replay: %v", err)
	}

	cfg := analysis.DefaultConfig()
	cfg.ThresholdMs = *thr

	vps := make([]string, 0, len(byVP))
	for vp := range byVP {
		vps = append(vps, vp)
	}
	sort.Strings(vps)

	t := &report.Table{
		Title:  fmt.Sprintf("offline analysis of %s (threshold %g ms)", *path, *thr),
		Header: []string{"VP", "link", "flagged", "diurnal", "congested", "class", "A_w (ms)"},
	}
	totalLinks, totalCongested := 0, 0
	for _, vp := range vps {
		links := byVP[vp]
		targets := make([]string, 0, len(links))
		index := make(map[string]analysis.LinkSeries, len(links))
		for target, ls := range links {
			key := target.String()
			targets = append(targets, key)
			index[key] = ls
		}
		sort.Strings(targets)
		for _, key := range targets {
			v := analysis.AnalyzeLink(index[key], cfg)
			totalLinks++
			if v.Congested {
				totalCongested++
			}
			aw := ""
			if v.Congested {
				aw = fmt.Sprintf("%.1f", v.AW)
			}
			t.AddRow(vp, key, yn(v.Flagged), yn(v.Diurnal.Diurnal),
				yn(v.Congested), v.Class.String(), aw)
		}
	}
	t.Render(os.Stdout)
	if totalLinks > 0 {
		fmt.Printf("\n%d/%d links congested (%.1f%%)\n",
			totalCongested, totalLinks, 100*float64(totalCongested)/float64(totalLinks))
	}
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
