// Command tslp runs a time-sequence latency probe campaign on one
// link and prints the level-shift analysis plus an ASCII waveform —
// the single-link view behind the paper's case studies.
//
//	tslp -vp VP4 -case QCELL-NETPAGE -from 2016-03-01 -days 21
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"afrixp"
	"afrixp/internal/report"
	"afrixp/internal/simclock"
)

func main() {
	var (
		vpID    = flag.String("vp", "VP1", "vantage point (VP1..VP6)")
		caseLnk = flag.String("case", "GIXA-GHANATEL", "case link name")
		from    = flag.String("from", "2016-03-03", "campaign start (2006-01-02)")
		days    = flag.Int("days", 21, "campaign length in days")
		thr     = flag.Float64("threshold", 10, "level-shift threshold (ms)")
		scale   = flag.Float64("scale", 0.2, "world scale")
		seed    = flag.Uint64("seed", 0, "world seed")
	)
	flag.Parse()

	start, err := time.Parse("2006-01-02", *from)
	if err != nil {
		fatal("bad -from: %v", err)
	}
	campaign := simclock.Interval{
		Start: simclock.At(start.UTC()),
		End:   simclock.At(start.UTC()).Add(time.Duration(*days) * 24 * time.Hour),
	}

	w := afrixp.NewWorld(afrixp.WorldOptions{Seed: *seed, Scale: *scale})
	w.AdvanceTo(campaign.Start)
	vp, ok := w.VPByID(*vpID)
	if !ok {
		fatal("unknown VP %q", *vpID)
	}
	target, ok := vp.CaseLinks[*caseLnk]
	if !ok {
		fatal("%s has no case link %q", *vpID, *caseLnk)
	}

	p := afrixp.NewProber(w, vp)
	session, err := p.NewTSLP(target)
	if err != nil {
		fatal("tslp: %v", err)
	}
	col := afrixp.NewCollector(session, afrixp.CollectorConfig{
		Campaign: campaign, FullResWindow: campaign,
	})
	fmt.Fprintf(os.Stderr, "probing %s every 5 minutes for %d days...\n", target, *days)
	campaign.Steps(5*time.Minute, func(t simclock.Time) {
		w.AdvanceTo(t)
		col.Round(t)
	})

	cfg := afrixp.DefaultAnalysisConfig()
	cfg.ThresholdMs = *thr
	v := afrixp.AnalyzeLink(col.Series(), cfg)

	fmt.Printf("link %s from %s (%s), %d days at 5-minute rounds\n\n",
		target, vp.ID, vp.Monitor, *days)
	near, far := col.FullRes()
	if err := report.ASCIIPlot(os.Stdout, []string{"far RTT (ms)", "near RTT (ms)"},
		[]rune{'o', '.'}, 100, 14, far, near); err != nil {
		fatal("plot: %v", err)
	}
	fmt.Println()
	fmt.Printf("flagged (threshold %g ms): %v\n", *thr, v.Flagged)
	fmt.Printf("near end flat:             %v\n", v.NearFlat)
	fmt.Printf("recurring diurnal pattern: %v (amplitude %.1f ms, consistency %.2f, peak hour %.1f)\n",
		v.Diurnal.Diurnal, v.Diurnal.AmplitudeMs, v.Diurnal.Consistency, v.Diurnal.PeakHour)
	fmt.Printf("verdict:                   %v (%s)\n", v.Congested, v.Class)
	if v.Congested {
		fmt.Printf("A_w = %.1f ms, Δt_UD = %v over %d events\n",
			v.AW, v.DeltaTUD.Round(time.Minute), len(v.Far.Events))
	}
	fmt.Printf("far-end loss fraction:     %.2f%%\n", 100*col.FarLossFraction())

	// Operator ground truth, as the interviews provided.
	if ann, ok := w.Interviews.Find(vp.ID, target); ok {
		fmt.Printf("\noperator interview: congested=%v class=%v cause=%s confirmed=%v\n",
			ann.CongestedTruth, ann.Class, ann.PrimaryCause(), ann.OperatorConfirmed)
		for _, ph := range ann.Phases {
			fmt.Printf("  %s → %s: %s — %s\n",
				ph.Interval.Start, ph.Interval.End, ph.Cause, ph.Note)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
