// Command bdrmapper runs the border-mapping process from a vantage
// point and dumps the inferred interdomain links, neighbors, and
// peers, with validation against the simulator's ground truth — the
// §4 step of the paper.
//
//	bdrmapper -vp VP1 -at 2016-03-17
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"afrixp"
	"afrixp/internal/report"
	"afrixp/internal/simclock"
)

func main() {
	var (
		vpID  = flag.String("vp", "VP1", "vantage point (VP1..VP6)")
		at    = flag.String("at", "2016-03-17", "snapshot date (2006-01-02)")
		scale = flag.Float64("scale", 0.2, "world scale")
		seed  = flag.Uint64("seed", 0, "world seed")
		full  = flag.Bool("links", false, "dump every inferred link")
	)
	flag.Parse()

	when, err := time.Parse("2006-01-02", *at)
	if err != nil {
		fatal("bad -at: %v", err)
	}
	t := simclock.At(when.UTC())

	w := afrixp.NewWorld(afrixp.WorldOptions{Seed: *seed, Scale: *scale})
	w.AdvanceTo(t)
	vp, ok := w.VPByID(*vpID)
	if !ok {
		fatal("unknown VP %q", *vpID)
	}

	res, err := afrixp.BorderMap(w, vp, t)
	if err != nil {
		fatal("bdrmap: %v", err)
	}
	fmt.Printf("border map of %s (%v) at %s: %d traces\n\n",
		vp.ID, res.VPAS, when.Format("2006-01-02"), res.TracesRun)

	tb := &report.Table{Title: "summary",
		Header: []string{"metric", "value"}}
	tb.AddRow("discovered IP links", fmt.Sprint(len(res.Links)))
	tb.AddRow("inferred IP peering links", fmt.Sprint(len(res.PeeringLinks())))
	tb.AddRow("AS neighbors", fmt.Sprint(len(res.Neighbors)))
	tb.AddRow("peers", fmt.Sprint(len(res.Peers)))
	tb.Render(os.Stdout)
	fmt.Println()

	truth := w.TruthNeighbors(vp)
	frac, missed, spurious := afrixp.ValidateNeighbors(res, truth)
	fmt.Printf("validation vs ground truth: %.1f%% of %d true neighbors discovered (paper avg: 96.2%%)\n",
		100*frac, len(truth))
	if len(missed) > 0 {
		fmt.Printf("  missed:   %v\n", missed)
	}
	if len(spurious) > 0 {
		fmt.Printf("  spurious: %v\n", spurious)
	}
	fmt.Println()

	if *full {
		lt := &report.Table{Title: "inferred interdomain links",
			Header: []string{"near", "far", "far AS", "AS name", "IXP", "relationship"}}
		for _, l := range res.Links {
			lt.AddRow(l.Near.String(), l.Far.String(), l.FarAS.String(),
				w.Graph.Name(l.FarAS), l.ViaIXP, l.Rel.String())
		}
		lt.Render(os.Stdout)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
