// Command repro regenerates every table and figure of the paper's
// evaluation from a simulated campaign and prints paper-vs-measured
// comparisons.
//
// Usage:
//
//	repro [-days N] [-scale F] [-gen-seed N] [-shards N] [-seed N]
//	      [-csvdir DIR] [-quiet]
//	      [-faults] [-fault-seed N] [-budget F] [-budget-seed N]
//	      [-budget-table] [-scale-sweep]
//	      [-checkpoint-dir DIR] [-checkpoint-every DUR] [-resume]
//	      [-result-sha]
//	      [-table1] [-table2] [-figs] [-headline] [-bdrmap] [-waveforms]
//	      [-asrank] [-whatif] [-cpuprofile FILE] [-memprofile FILE]
//	      [-metrics FILE] [-metrics-addr HOST:PORT]
//
// -scale ≤ 1 scales the authored paper world's synthetic populations
// (existing invocations are unchanged); -scale > 1 generates a
// continent-scale world (internal/worldgen) at that multiple of the
// paper's size, seeded by -gen-seed, with planted congestion ground
// truth. -shards partitions the VPs into memory shards, each sealing
// its series into one shared compression arena; results are
// bit-identical for any -shards / -workers / -batch. -scale-sweep
// runs the 1×/10×/100× engine sweep and prints links/s, resident
// bytes/link, and peak RSS per scale.
//
// -faults injects the deterministic fault plan (VP outages, ICMP
// blackouts and rate limiting, link flaps) and prints each VP's
// uptime and sample yield; results remain bit-identical for any
// -workers / -batch.
//
// -budget F (F > 0) installs the probe-budget scheduler: links are
// ranked by marginal utility and probed at adaptive power-of-two
// periods so the campaign sends at most F of the full-rate probes;
// results are bit-identical per (-budget, -budget-seed) for any
// -workers / -batch. F of 1 (or above, clamped) runs the scheduler at
// full spend — every link at period 1, probe-count parity with an
// unscheduled run — so 100% budgets take the same code path as 99.9%.
// -budget-table runs the campaign at 100/50/25/10% budgets and prints
// detection recall, time-to-detect, and Table-1 fidelity per budget
// point.
//
// -checkpoint-dir DIR snapshots the engine's full measurement state
// into DIR every -checkpoint-every of virtual campaign time (default
// 24h), at batch barriers. -resume loads the newest valid checkpoint
// from DIR and continues the campaign from its barrier — bit-identical
// to an uninterrupted run, even after a SIGKILL mid-write (the loader
// falls back past truncated snapshots). -result-sha prints a SHA-256
// digest of every campaign observable at the bit level, for comparing
// runs.
//
// -metrics writes a campaign telemetry snapshot (JSON) at exit;
// -metrics-addr serves the same snapshot live at /metrics (plus the
// standard expvar surface at /debug/vars) while the run progresses,
// and carries the streaming observatory's API on the same port:
// /links, /links/{id}, /alerts (since-cursor, ?wait=1 long-polls),
// and /stream (SSE barrier feed from the online level-shift
// detectors). Telemetry and observatory are strictly read-side:
// results are unchanged by them.
//
// With no selection flags, everything is produced. The default run
// covers the paper's full 13-month campaign at scale 1.0; use -days
// and -scale for quick looks.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"afrixp"
	"afrixp/internal/budget"
	"afrixp/internal/experiments"
	"afrixp/internal/profiling"
	"afrixp/internal/report"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// main delegates to run so that every deferred flush — CPU/heap
// profiles, the telemetry snapshot — executes on error paths too;
// an os.Exit in the body would skip them (the gap the profiling
// package used to document).
func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		days        = flag.Int("days", 0, "campaign length in days (0 = the paper's full period)")
		startOff    = flag.Int("start-offset", 0, "days after 2016-02-22 to start the campaign")
		scale       = flag.Float64("scale", 1.0, "world scale: ≤1 scales the authored paper world's populations; >1 generates a continent-scale world (see -gen-seed)")
		genSeed     = flag.Uint64("gen-seed", 0, "continent-scale generator seed (only with -scale > 1; 0 = default)")
		shards      = flag.Int("shards", 0, "partition VPs into this many memory shards, one shared series arena each (0/1 = private per-VP arenas; results are identical for any value)")
		doSweep     = flag.Bool("scale-sweep", false, "run the 1×/10×/100× scale sweep (throughput, bytes/link, peak RSS) and print the table")
		seed        = flag.Uint64("seed", 0, "world seed (0 = default)")
		csvDir      = flag.String("csvdir", "", "when set, write figure CSVs into this directory")
		quiet       = flag.Bool("quiet", false, "suppress progress output")
		noLoss      = flag.Bool("no-loss", false, "skip the 1 pps loss campaigns")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "probing/analysis worker goroutines (results are identical for any value)")
		batch       = flag.Int("batch", 0, "max probing steps per worker dispatch (0 = default 1024; results are identical for any value)")
		doFaults    = flag.Bool("faults", false, "inject the deterministic fault plan (VP outages, ICMP blackouts/rate limits, link flaps) and print per-VP uptime/sample yield")
		faultSeed   = flag.Uint64("fault-seed", 0, "extra seed for the fault plan (only with -faults)")
		budgetFrac  = flag.Float64("budget", 0, "probe budget as a fraction of full rate (0 = no scheduler; ≥1 = scheduler at full spend; results identical per (budget, budget-seed) for any -workers/-batch)")
		budgetSeed  = flag.Uint64("budget-seed", 0, "extra seed for the probe-budget schedule (only with -budget)")
		doBudgetTab = flag.Bool("budget-table", false, "run the probe-budget sweep (100/50/25/10%) and print recall/time-to-detect/Table-1 fidelity per budget")
		doTable1    = flag.Bool("table1", false, "Table 1: threshold sensitivity")
		doTable2    = flag.Bool("table2", false, "Table 2: per-VP evolution")
		doFigs      = flag.Bool("figs", false, "Figures 1-4")
		doHead      = flag.Bool("headline", false, "§6.1 congested fraction")
		doBdrmap    = flag.Bool("bdrmap", false, "§4 bdrmap validation")
		doWaves     = flag.Bool("waveforms", false, "§5.2 A_w / Δt_UD")
		doRels      = flag.Bool("asrank", false, "AS-relationship inference validation")
		doWhatIf    = flag.Bool("whatif", false, "NETPAGE upgrade capacity-planning sweep")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile to this file at exit")
		metricsOut  = flag.String("metrics", "", "write a campaign telemetry snapshot (JSON) to this file at exit")
		metricsAddr = flag.String("metrics-addr", "", "serve live telemetry at http://ADDR/metrics during the run")
		ckptDir     = flag.String("checkpoint-dir", "", "snapshot the campaign's measurement state into this directory at batch barriers")
		ckptEvery   = flag.Duration("checkpoint-every", 0, "virtual-time cadence between checkpoints (0 = default 24h; only with -checkpoint-dir)")
		doResume    = flag.Bool("resume", false, "resume from the newest valid checkpoint in -checkpoint-dir (bit-identical to an uninterrupted run)")
		resultSHA   = flag.Bool("result-sha", false, "print a SHA-256 digest of every campaign observable (bit-level), for comparing runs")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	var tele *afrixp.Telemetry
	var live *afrixp.Observatory
	if *metricsOut != "" || *metricsAddr != "" {
		tele = afrixp.NewTelemetry()
		if *metricsOut != "" {
			// Deferred so the snapshot lands even when a later stage
			// fails: whatever was counted up to the failure is kept.
			defer func() {
				if err := tele.WriteJSONFile(*metricsOut); err != nil {
					fmt.Fprintln(os.Stderr, err)
				} else {
					fmt.Fprintf(os.Stderr, "telemetry snapshot written to %s\n", *metricsOut)
				}
			}()
		}
		if *metricsAddr != "" {
			// The streaming observatory rides beside /metrics: the live
			// link table, alert log, and SSE stream of the campaign's
			// online detectors. Read-side only — results are unchanged.
			live = afrixp.NewObservatory(afrixp.ObservatoryConfig{})
			srv, err := tele.Serve(*metricsAddr, live.Mount)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "telemetry: live at http://%s/metrics\n", srv.Addr())
			fmt.Fprintf(os.Stderr, "observatory: live at http://%s/links /alerts /stream\n", srv.Addr())
		}
	}

	all := !(*doTable1 || *doTable2 || *doFigs || *doHead || *doBdrmap || *doWaves || *doRels || *doWhatIf)

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}

	if *doBudgetTab {
		return runBudgetTable(*seed, *scale, *days, *startOff, *noLoss,
			*workers, *batch, *budgetSeed, progress)
	}
	if *doSweep {
		fmt.Fprintln(os.Stderr, "scale sweep: 1× (paper world) + 10×/100× generated worlds...")
		points := experiments.RunScaleSweep(experiments.ScaleSweepConfig{
			GenSeed: *genSeed, Workers: *workers, Progress: progress,
		})
		experiments.RenderScaleSweep(os.Stdout, points)
		return nil
	}

	fmt.Fprintf(os.Stderr, "building world (scale %.2f) and running campaign...\n", *scale)
	start := time.Now()
	c := afrixp.RunCampaign(afrixp.CampaignConfig{
		Seed: *seed, Scale: *scale, GenSeed: *genSeed, Days: *days, StartOffsetDays: *startOff,
		DisableLoss: *noLoss, Workers: *workers, BatchSteps: *batch, Shards: *shards,
		Faults: *doFaults, FaultSeed: *faultSeed,
		Budget: *budgetFrac, BudgetSeed: *budgetSeed,
		CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery, Resume: *doResume,
		Progress: progress, Telemetry: tele, Observatory: live,
	})
	fmt.Fprintf(os.Stderr, "campaign finished in %v\n\n", time.Since(start).Round(time.Second))

	if *resultSHA {
		fmt.Fprintf(os.Stdout, "result sha256: %s\n", experiments.ResultDigest(c))
	}

	out := os.Stdout
	if *doFaults {
		t := &report.Table{Title: "fault plan: per-VP uptime and sample yield",
			Header: []string{"VP", "links", "uptime", "rounds", "missed", "skipped", "sample yield"}}
		for _, y := range c.Yields() {
			t.AddRow(y.VP, fmt.Sprint(y.Links),
				fmt.Sprintf("%.1f%%", 100*y.Uptime),
				fmt.Sprint(y.Rounds), fmt.Sprint(y.Missed), fmt.Sprint(y.Skipped),
				fmt.Sprintf("%.1f%%", 100*y.SampleYield))
		}
		t.Render(out)
		fmt.Fprintf(out, "%d fault episodes injected\n\n", len(c.Faults.Faults))
	}
	if *budgetFrac > 0 {
		var rounds, skipped int
		for _, y := range c.Yields() {
			rounds += y.Rounds
			skipped += y.Skipped
		}
		fmt.Fprintf(os.Stderr, "probe budget %.0f%%: %d rounds sent, %d skipped (%.1f%% of schedule)\n\n",
			100**budgetFrac, rounds, skipped,
			100*float64(rounds)/float64(rounds+skipped))
	}
	if all || *doTable1 {
		afrixp.Table1Report(c).Render(out)
		fmt.Fprintln(out)
		report.RenderComparisons(out, "Table 1 paper-vs-measured (10 ms column)", table1Comparisons(c))
		fmt.Fprintln(out)
	}
	if all || *doTable2 {
		afrixp.Table2Report(c).Render(out)
		fmt.Fprintln(out)
	}
	if all || *doHead {
		rows, frac := afrixp.Headline(c)
		t := &report.Table{Title: "§6.1: fraction of discovered links that experienced congestion",
			Header: []string{"VP", "links", "congested", "fraction"}}
		for _, r := range rows {
			t.AddRow(r.VP, fmt.Sprint(r.Links), fmt.Sprint(r.Congested),
				fmt.Sprintf("%.1f%%", 100*r.Fraction))
		}
		t.AddRow("All", "", "", fmt.Sprintf("%.1f%%", 100*frac))
		t.Render(out)
		fmt.Fprintf(out, "paper: 2.2%% of discovered links congested; measured: %.1f%%\n\n", 100*frac)
	}
	if all || *doBdrmap {
		fmt.Fprintf(out, "§4 bdrmap validation: mean neighbor coverage %.1f%% (paper: 96.2%%)\n\n",
			100*afrixp.BdrmapAccuracy(c))
	}
	if all || *doWaves {
		t := &report.Table{Title: "§5.2 waveform statistics (sanitized level shifts)",
			Header: []string{"case", "A_w (ms)", "Δt_UD", "events", "class", "paper A_w", "paper Δt_UD"}}
		paper := map[string][2]string{
			"GIXA-GHANATEL": {"27.9", "~20h"},
			"GIXA-KNET":     {"17.5", "2h14m"},
			"QCELL-NETPAGE": {"10.7", "6h22m"},
		}
		for _, wf := range afrixp.Waveforms(c) {
			p := paper[wf.Case]
			t.AddRow(wf.Case, fmt.Sprintf("%.1f", wf.AW),
				wf.DeltaTUD.Round(time.Minute).String(),
				fmt.Sprint(wf.Events), wf.Class, p[0], p[1])
		}
		t.Render(out)
		fmt.Fprintln(out)
	}
	if all || *doRels {
		ri, err := experiments.RunRelInference(scenario.Options{Seed: *seed, Scale: *scale},
			afrixp.Date(2016, 3, 17))
		if err != nil {
			fmt.Fprintf(os.Stderr, "asrank: %v\n", err)
		} else {
			fmt.Fprintf(out, "AS-rank stand-in: %d collector paths; %.0f%% of ground-truth links visible,\n",
				ri.Paths, 100*ri.Covered)
			fmt.Fprintf(out, "  %.0f%% of visible links classified exactly; bdrmap peers truth=%d inferred=%d\n\n",
				100*ri.Exact/ri.Covered, ri.PeersTruth, ri.PeersInferred)
		}
	}
	if all || *doWhatIf {
		pts, err := experiments.RunUpgradeWhatIf(scenario.Options{Seed: *seed, Scale: *scale}, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "whatif: %v\n", err)
		} else {
			t := &report.Table{Title: "what-if: NETPAGE upgrade capacity sweep (actual choice: 1 Gbps)",
				Header: []string{"upgrade to", "still congested", "post-upgrade P95 RTT"}}
			for _, pt := range pts {
				t.AddRow(fmt.Sprintf("%.0f Mbps", pt.UpgradeBps/1e6),
					fmt.Sprint(pt.CongestedAfter),
					fmt.Sprintf("%.1f ms", pt.PeakP95Ms))
			}
			t.Render(out)
			fmt.Fprintln(out)
		}
	}
	if all || *doFigs {
		for _, fig := range afrixp.Figures(c) {
			if err := fig.Render(out, 100, 14); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", fig.ID, err)
				continue
			}
			fmt.Fprintln(out)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, fig); err != nil {
					fmt.Fprintf(os.Stderr, "csv %s: %v\n", fig.ID, err)
				}
			}
		}
	}
	return nil
}

// runBudgetTable runs the probe-budget sweep — the full-rate campaign
// plus budgeted reruns at 50/25/10% — and prints probe spend, ground-
// truth recall, time-to-detect, and Table-1 fidelity per budget point.
func runBudgetTable(seed uint64, scale float64, days, startOff int,
	noLoss bool, workers, batch int, budgetSeed uint64, progress io.Writer) error {
	base := experiments.Config{
		Opts:        scenario.Options{Seed: seed, Scale: scale},
		DisableLoss: noLoss,
		Workers:     workers,
		BatchSteps:  batch,
		Budget:      &budget.Config{Seed: budgetSeed},
		Progress:    progress,
	}
	start := simclock.Time(0).Add(time.Duration(startOff) * 24 * time.Hour)
	if days > 0 {
		base.Campaign = simclock.Interval{
			Start: start,
			End:   start.Add(time.Duration(days) * 24 * time.Hour),
		}
		if base.Campaign.End > simclock.LatencyEnd {
			base.Campaign.End = simclock.LatencyEnd
		}
	} else if startOff > 0 {
		base.Campaign = simclock.Interval{Start: start, End: simclock.LatencyEnd}
	}
	fmt.Fprintf(os.Stderr, "budget sweep (scale %.2f): full rate + 50/25/10%% budgets...\n", scale)
	t0 := time.Now()
	points := experiments.RunBudgetSweep(base, nil)
	fmt.Fprintf(os.Stderr, "sweep finished in %v\n\n", time.Since(t0).Round(time.Second))
	experiments.BudgetSweepReport(points).Render(os.Stdout)
	fmt.Fprintln(os.Stdout)
	return nil
}

func table1Comparisons(c *afrixp.Campaign) []report.PaperComparison {
	paper := map[string]int{"VP1": 4, "VP2": 5, "VP3": 56, "VP4": 1, "VP5": 147, "VP6": 88}
	paperD := map[string]int{"VP1": 2, "VP2": 2, "VP3": 1, "VP4": 1, "VP5": 0, "VP6": 0}
	var rows []report.PaperComparison
	for _, r := range afrixp.Table1(c) {
		if r.VP == "All VPs" {
			continue
		}
		rows = append(rows, report.PaperComparison{
			Experiment: "table1", Metric: r.VP + " flagged@10ms (diurnal)",
			Paper:      fmt.Sprintf("%d (%d)", paper[r.VP], paperD[r.VP]),
			Measured:   fmt.Sprintf("%d (%d)", r.Flagged[10], r.Diurnal[10]),
			ShapeHolds: (paperD[r.VP] == 0) == (r.Diurnal[10] == 0),
			Note:       "counts scale with -scale",
		})
	}
	return rows
}

func writeCSV(dir string, fig experiments.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, fig.ID+".csv"))
	if err != nil {
		return err
	}
	if err := fig.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	f.Close()
	svg, err := os.Create(filepath.Join(dir, fig.ID+".svg"))
	if err != nil {
		return err
	}
	defer svg.Close()
	return fig.WriteSVG(svg, 960, 380)
}
