// Package afrixp is a full reproduction of "Investigating the Causes
// of Congestion on the African IXP Substrate" (Fanou, Valera,
// Dhamdhere — ACM IMC 2017) as a Go library.
//
// The paper deployed Ark probes at six African IXPs and ran the
// time-sequence latency probes (TSLP) technique for a year to detect
// congestion on interdomain links. Reproducing that requires hardware
// and vantage points this library replaces with a deterministic
// packet-level simulator; everything above the wire is the real
// pipeline:
//
//   - a simulated internetwork (routers, IXP switch fabrics, fluid
//     queues driven by diurnal traffic models, ICMP semantics),
//   - a scamper-like prober (TTL-limited probes, record-route, token
//     bucket pacing, warts-style output),
//   - border mapping (bdrmap) with alias resolution, RIR delegations,
//     and IXP directory datasets in their real file formats,
//   - the TSLP analysis: rank-based CUSUM level-shift detection,
//     diurnal-pattern filtering, loss-rate batches, and sustained/
//     transient classification,
//   - the paper's scenario: GIXA, TIX, JINX, SIXP, KIXP and RINEX,
//     with the GIXA–GHANATEL, GIXA–KNET and QCELL–NETPAGE case
//     studies and the membership churn of Table 2.
//
// # Quick start
//
//	world := afrixp.NewWorld(afrixp.WorldOptions{Seed: 1, Scale: 0.2})
//	vp, _ := world.VPByID("VP4")
//	p := afrixp.NewProber(world, vp)
//	session, _ := p.NewTSLP(vp.CaseLinks["QCELL-NETPAGE"])
//	sample := session.Round(afrixp.Date(2016, 3, 9).Add(13 * time.Hour))
//
// or run the paper's entire campaign and regenerate its tables:
//
//	campaign := afrixp.RunCampaign(afrixp.CampaignConfig{Days: 60})
//	afrixp.Table1Report(campaign).Render(os.Stdout)
package afrixp

import (
	"time"

	"afrixp/internal/asrel"
	"afrixp/internal/netsim"
	"afrixp/internal/prober"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// Time is a virtual timestamp (nanoseconds since the campaign epoch,
// 2016-02-22 00:00 UTC).
type Time = simclock.Time

// Interval is a half-open span of virtual time.
type Interval = simclock.Interval

// Epoch returns the wall-clock instant of Time(0).
func Epoch() time.Time { return simclock.Epoch }

// Date converts a calendar date to virtual time.
func Date(year int, month time.Month, day int) Time {
	return simclock.Date(year, month, day)
}

// CampaignEnd is the end of the paper's latency campaign
// (2017-03-27).
func CampaignEnd() Time { return simclock.LatencyEnd }

// WorldOptions configures the simulated six-IXP world.
type WorldOptions = scenario.Options

// World is the simulated internetwork plus the datasets and ground
// truth of the study.
type World = scenario.World

// VP is one of the paper's six vantage points.
type VP = scenario.VP

// LinkTarget identifies a discovered interdomain IP link by its near
// and far addresses.
type LinkTarget = prober.LinkTarget

// NewWorld builds the paper's world. Scale 1.0 reproduces the
// Table-1-like population sizes; smaller values shrink the synthetic
// member populations proportionally.
func NewWorld(opts WorldOptions) *World {
	return scenario.Paper(opts)
}

// Prober is the scamper-like measurement agent bound to one VP.
type Prober = prober.Prober

// TSLP is a time-sequence latency probe session on one link.
type TSLP = prober.TSLP

// ProberConfig tunes a measurement agent.
type ProberConfig = prober.Config

// NewProber binds a measurement agent to a vantage point.
func NewProber(w *World, vp *VP) *Prober {
	return prober.New(w.Net, vp.Node, prober.Config{Name: vp.Monitor})
}

// NewProberWithConfig is NewProber with explicit configuration
// (probing rate, warts output, timeout).
func NewProberWithConfig(w *World, vp *VP, cfg ProberConfig) *Prober {
	if cfg.Name == "" {
		cfg.Name = vp.Monitor
	}
	return prober.New(w.Net, vp.Node, cfg)
}

// Node re-exports the simulator node type for topology inspection.
type Node = netsim.Node

// ASN is an autonomous system number.
type ASN = asrel.ASN
